package serve

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dbdc-go/dbdc/internal/benchio"
	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/geom"
)

// LoadConfig parameterises one closed-loop load generation run: every
// worker owns one persistent connection and keeps exactly one request in
// flight (send, wait, record, repeat), so offered load adapts to what the
// server sustains — the standard closed-loop benchmarking model.
type LoadConfig struct {
	// Addr is the classification front end to hit.
	Addr string
	// Concurrency is the number of workers (connections); 0 = GOMAXPROCS.
	Concurrency int
	// Duration is how long the run lasts; 0 = 5s.
	Duration time.Duration
	// BatchSize is the points per request: 1 sends MsgClassify frames,
	// anything larger MsgClassifyBatch. 0 = 1.
	BatchSize int
	// Points is the query point pool; workers cycle through it at
	// staggered offsets. Required, non-empty.
	Points []geom.Point
	// Timeout bounds dial and per-request I/O; 0 = 10s.
	Timeout time.Duration
}

// LoadResult aggregates a load run.
type LoadResult struct {
	// Config echoes the effective (defaults-resolved) configuration.
	Config LoadConfig
	// Requests counts completed successful requests; Errors failed ones
	// (error replies, I/O failures — each followed by a reconnect).
	Requests uint64
	Errors   uint64
	// PointsClassified and NoisePoints count labelled points and the
	// noise-labelled subset.
	PointsClassified uint64
	NoisePoints      uint64
	// MinVersion and MaxVersion bracket the model versions observed in
	// replies — under a hot-swapping server the range documents how many
	// swaps the run straddled.
	MinVersion uint64
	MaxVersion uint64
	// Elapsed is the wall-clock run time.
	Elapsed time.Duration
	// Latency is the client-observed request latency histogram.
	Latency *Histogram
}

// QPS returns completed requests per wall-clock second.
func (r *LoadResult) QPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Elapsed.Seconds()
}

// PointsPerSec returns classified points per wall-clock second.
func (r *LoadResult) PointsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.PointsClassified) / r.Elapsed.Seconds()
}

// String renders a human-readable run summary.
func (r *LoadResult) String() string {
	return fmt.Sprintf(
		"loadgen: conc=%d batch=%d dur=%s: %d requests (%.0f req/s, %.0f points/s), %d errors, "+
			"p50=%s p95=%s p99=%s, noise %.1f%%, model versions %d..%d",
		r.Config.Concurrency, r.Config.BatchSize, r.Elapsed.Round(time.Millisecond),
		r.Requests, r.QPS(), r.PointsPerSec(), r.Errors,
		r.Latency.Quantile(0.5).Round(time.Microsecond),
		r.Latency.Quantile(0.95).Round(time.Microsecond),
		r.Latency.Quantile(0.99).Round(time.Microsecond),
		100*float64(r.NoisePoints)/float64(max(r.PointsClassified, 1)),
		r.MinVersion, r.MaxVersion)
}

// BenchReport converts the run into the benchio JSON schema, so serving
// throughput joins the BENCH_<rev>.json trajectory and cmd/benchdiff can
// flag regressions. The entry name mirrors the sub-benchmark convention of
// the in-process suite; NsPerOp is the mean request latency.
func (r *LoadResult) BenchReport(rev string) *benchio.Report {
	name := fmt.Sprintf("LoadgenClassify/conc=%d/batch=%d", r.Config.Concurrency, r.Config.BatchSize)
	entry := benchio.Entry{
		Name:        name,
		Iterations:  int64(r.Requests),
		NsPerOp:     float64(r.Latency.Mean().Nanoseconds()),
		BytesPerOp:  -1,
		AllocsPerOp: -1,
		Metrics: map[string]float64{
			"qps":       r.QPS(),
			"points/s":  r.PointsPerSec(),
			"p50-ms":    float64(r.Latency.Quantile(0.5)) / float64(time.Millisecond),
			"p95-ms":    float64(r.Latency.Quantile(0.95)) / float64(time.Millisecond),
			"p99-ms":    float64(r.Latency.Quantile(0.99)) / float64(time.Millisecond),
			"errors":    float64(r.Errors),
			"noise-pct": 100 * float64(r.NoisePoints) / float64(max(r.PointsClassified, 1)),
		},
	}
	return &benchio.Report{
		Rev:        rev,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Entries:    []benchio.Entry{entry},
	}
}

// RunLoad executes one closed-loop run against cfg.Addr. Workers dial
// their own connections, cycle through the point pool at staggered
// offsets and keep one request in flight each until the duration elapses.
// A failed request costs the worker a reconnect (counted as one error);
// the run only fails outright when not a single request succeeded.
func RunLoad(cfg LoadConfig) (*LoadResult, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("serve: loadgen needs an address")
	}
	if len(cfg.Points) == 0 {
		return nil, fmt.Errorf("serve: loadgen needs a non-empty query point pool")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = runtime.GOMAXPROCS(0)
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 1
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}

	res := &LoadResult{Config: cfg, Latency: NewHistogram()}
	var requests, errs, points, noise atomic.Uint64
	var minVer, maxVer atomic.Uint64
	minVer.Store(^uint64(0))

	deadline := time.Now().Add(cfg.Duration)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// Stagger the pool offset so workers do not hammer identical
			// batches in lockstep.
			offset := (worker * len(cfg.Points)) / cfg.Concurrency
			batch := make([]geom.Point, cfg.BatchSize)
			var client *Client
			defer func() {
				if client != nil {
					client.Close()
				}
			}()
			for time.Now().Before(deadline) {
				if client == nil {
					c, err := Dial(cfg.Addr, cfg.Timeout)
					if err != nil {
						errs.Add(1)
						time.Sleep(10 * time.Millisecond) // closed loop: back off on dial failure
						continue
					}
					client = c
				}
				for i := range batch {
					batch[i] = cfg.Points[offset%len(cfg.Points)]
					offset++
				}
				reqStart := time.Now()
				var labels []cluster.ID
				var version uint64
				var err error
				if cfg.BatchSize == 1 {
					var l cluster.ID
					l, version, err = client.Classify(batch[0])
					labels = append(labels[:0], l)
				} else {
					labels, version, err = client.ClassifyBatch(batch)
				}
				if err != nil {
					errs.Add(1)
					client.Close()
					client = nil
					continue
				}
				res.Latency.Observe(time.Since(reqStart))
				requests.Add(1)
				points.Add(uint64(len(labels)))
				n := 0
				for _, l := range labels {
					if l == cluster.Noise {
						n++
					}
				}
				noise.Add(uint64(n))
				for {
					cur := minVer.Load()
					if version >= cur || minVer.CompareAndSwap(cur, version) {
						break
					}
				}
				for {
					cur := maxVer.Load()
					if version <= cur || maxVer.CompareAndSwap(cur, version) {
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.Requests = requests.Load()
	res.Errors = errs.Load()
	res.PointsClassified = points.Load()
	res.NoisePoints = noise.Load()
	if res.Requests > 0 {
		res.MinVersion = minVer.Load()
		res.MaxVersion = maxVer.Load()
	}
	if res.Requests == 0 {
		return res, fmt.Errorf("serve: loadgen completed no request in %s (%d errors)", res.Elapsed.Round(time.Millisecond), res.Errors)
	}
	return res, nil
}
