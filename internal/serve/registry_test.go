package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/index"
	"github.com/dbdc-go/dbdc/internal/model"
)

// versionedModel builds a valid single-representative global model whose
// cluster id encodes the generation — classifying the origin against it
// must return exactly that id, which is how the hot-swap tests detect a
// torn or mismatched snapshot.
func versionedModel(gen int32) *model.GlobalModel {
	return &model.GlobalModel{
		EpsGlobal:    1,
		MinPtsGlobal: 2,
		NumClusters:  1,
		Reps: []model.GlobalRepresentative{{
			Representative: model.Representative{Point: geom.Point{0, 0}, Eps: 1, LocalCluster: 0},
			SiteID:         "site-1",
			GlobalCluster:  cluster.ID(gen),
		}},
	}
}

func TestRegistryPublishAndVersioning(t *testing.T) {
	reg := NewRegistry(index.KindKDTree)
	if reg.Current() != nil || reg.Version() != 0 {
		t.Fatal("fresh registry is not empty")
	}
	s1, err := reg.Publish(versionedModel(7))
	if err != nil {
		t.Fatal(err)
	}
	if s1.Version != 1 || reg.Version() != 1 {
		t.Fatalf("first publication got version %d", s1.Version)
	}
	s2, err := reg.Publish(versionedModel(8))
	if err != nil {
		t.Fatal(err)
	}
	if s2.Version != 2 {
		t.Fatalf("second publication got version %d", s2.Version)
	}
	// The earlier snapshot is untouched by the swap.
	if id, _ := s1.Classifier.Classify(geom.Point{0, 0}); id != 7 {
		t.Fatalf("pre-swap snapshot answered %v, want 7", id)
	}
	if id, _ := reg.Current().Classifier.Classify(geom.Point{0, 0}); id != 8 {
		t.Fatalf("current snapshot answered %v, want 8", id)
	}
	// Invalid models are rejected and leave the current snapshot alone.
	if _, err := reg.Publish(&model.GlobalModel{EpsGlobal: -1, MinPtsGlobal: 2}); err == nil {
		t.Fatal("negative-eps model published")
	}
	if _, err := reg.Publish(nil); err == nil {
		t.Fatal("nil model published")
	}
	if got := reg.Version(); got != 2 {
		t.Fatalf("rejected publications moved the version to %d", got)
	}
	if reg.Published() != 2 || reg.Rejected() != 2 {
		t.Fatalf("counters: published=%d rejected=%d, want 2/2", reg.Published(), reg.Rejected())
	}
	// The empty all-noise sentinel is publishable: serving "everything is
	// noise" is a legitimate model state, not an error.
	s3, err := reg.Publish(&model.GlobalModel{MinPtsGlobal: 2})
	if err != nil {
		t.Fatalf("sentinel rejected: %v", err)
	}
	if s3.Version != 3 {
		t.Fatalf("sentinel got version %d", s3.Version)
	}
}

// TestRegistryHotSwapUnderLoad is the race guard of the tentpole: a
// publisher hot-swaps a stream of model versions while reader goroutines
// classify at full speed. Under -race this proves the swap is data-race
// free; the assertions prove no reader ever observes a torn snapshot
// (label always matches the snapshot's version-encoded cluster id) and
// that observed versions are monotone per reader.
func TestRegistryHotSwapUnderLoad(t *testing.T) {
	reg := NewRegistry(index.KindKDTree)
	if _, err := reg.Publish(versionedModel(1)); err != nil {
		t.Fatal(err)
	}

	const readers = 8
	const swaps = 300
	var stop atomic.Bool
	var torn atomic.Int64
	var nonMonotone atomic.Int64
	var reads atomic.Int64
	var wg sync.WaitGroup

	origin := geom.Point{0, 0}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastVersion uint64
			for !stop.Load() {
				snap := reg.Current()
				if snap == nil {
					continue
				}
				if snap.Version < lastVersion {
					nonMonotone.Add(1)
					return
				}
				lastVersion = snap.Version
				id, err := snap.Classifier.Classify(origin)
				if err != nil {
					torn.Add(1)
					return
				}
				// The generation encoded in the model equals the snapshot
				// version (the publisher publishes generation g as version
				// g): any mismatch means the reader saw a classifier from
				// one version paired with metadata from another.
				if uint64(id) != snap.Version {
					torn.Add(1)
					return
				}
				reads.Add(1)
			}
		}()
	}

	// Publisher: versions 2..swaps+1, generation == expected version.
	for g := int32(2); g <= swaps+1; g++ {
		snap, err := reg.Publish(versionedModel(g))
		if err != nil {
			t.Fatalf("publish generation %d: %v", g, err)
		}
		if snap.Version != uint64(g) {
			t.Fatalf("generation %d published as version %d", g, snap.Version)
		}
		if g%16 == 0 {
			time.Sleep(time.Millisecond) // let readers interleave
		}
	}
	stop.Store(true)
	wg.Wait()

	if torn.Load() > 0 {
		t.Fatalf("%d reads observed a torn snapshot", torn.Load())
	}
	if nonMonotone.Load() > 0 {
		t.Fatalf("%d readers saw the version go backwards", nonMonotone.Load())
	}
	if reads.Load() == 0 {
		t.Fatal("no reader completed a single classification")
	}
	if got := reg.Version(); got != swaps+1 {
		t.Fatalf("final version %d, want %d", got, swaps+1)
	}
}
