// Package serve is the read side of DBDC: it turns the global model — the
// paper's condensed inference artifact of representatives with specific
// ε-ranges (Definitions 6/7) — into an online classification service.
// While the transport package runs the write side (training rounds that
// rebuild the global model), serve publishes each rebuilt model into a
// versioned registry with lock-free hot swap, classifies arbitrary points
// against the current version with the exact relabeling rule of Section 7
// (shared with dbdc.Relabel through dbdc.RepSelector), and exposes the
// whole thing over the CRC-checked frame protocol plus a Prometheus-format
// metrics endpoint.
package serve

import (
	"fmt"
	"sync"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/dbdc"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/index"
	"github.com/dbdc-go/dbdc/internal/model"
)

// Classifier answers "which global cluster does this point belong to?"
// against one immutable global model. It bulk-loads the representatives
// into a spatial index (kd-tree by default; any index.Kind works), queries
// with radius max ε_r and filters per-representative ε — the same
// candidate-then-verify scheme Relabel uses, through the same shared
// dbdc.RepSelector, so online classification of a training point is
// label-identical to the relabeling that trained it.
//
// A Classifier is immutable after construction and safe for any number of
// concurrent readers; the candidate-id and batched-distance buffers of the
// selection rule are pooled internally so the steady-state hot path
// allocates nothing.
type Classifier struct {
	sel     *dbdc.RepSelector
	model   *model.GlobalModel
	scratch sync.Pool // *dbdc.RepScratch selection buffers
}

// NewClassifier builds a classifier for the global model over the given
// index kind ("" selects the kd-tree). The model must have passed
// model.GlobalModel.Validate; the empty all-noise sentinel yields a
// classifier that answers noise for everything.
func NewClassifier(global *model.GlobalModel, kind index.Kind) (*Classifier, error) {
	sel, err := dbdc.NewRepSelector(global, kind)
	if err != nil {
		return nil, fmt.Errorf("serve: building classifier: %w", err)
	}
	c := &Classifier{sel: sel, model: global}
	c.scratch.New = func() any { return new(dbdc.RepScratch) }
	return c, nil
}

// Model returns the global model the classifier serves. Callers must treat
// it as immutable.
func (c *Classifier) Model() *model.GlobalModel { return c.model }

// Dim returns the dimensionality the classifier accepts, 0 for the empty
// sentinel (which accepts — and noise-labels — anything).
func (c *Classifier) Dim() int { return c.sel.Dim() }

// NumReps returns the number of representatives loaded into the index.
func (c *Classifier) NumReps() int { return c.sel.NumReps() }

// checkPoint validates one untrusted query point against the model.
func (c *Classifier) checkPoint(i int, p geom.Point) error {
	if len(p) == 0 {
		return fmt.Errorf("serve: point %d has no coordinates", i)
	}
	if !p.IsFinite() {
		return fmt.Errorf("serve: point %d has non-finite coordinates", i)
	}
	if !c.sel.Empty() && p.Dim() != c.sel.Dim() {
		return fmt.Errorf("serve: point %d has dimension %d, model has %d", i, p.Dim(), c.sel.Dim())
	}
	return nil
}

// Classify labels one point: the global cluster id of the nearest covering
// representative, or noise. Points of the wrong dimensionality (or with
// non-finite coordinates) are rejected with an error — network input never
// reaches the distance kernels unchecked.
func (c *Classifier) Classify(p geom.Point) (cluster.ID, error) {
	if err := c.checkPoint(0, p); err != nil {
		return cluster.Noise, err
	}
	sc := c.scratch.Get().(*dbdc.RepScratch)
	id := c.sel.SelectInto(p, sc)
	c.scratch.Put(sc)
	return id, nil
}

// ClassifyBatch labels a batch of points into out (which must have the
// batch's length). Validation is all-or-nothing: a bad point fails the
// whole batch before any classification happens, so a reply never mixes
// labels with an error.
func (c *Classifier) ClassifyBatch(pts []geom.Point, out []cluster.ID) error {
	if len(out) != len(pts) {
		return fmt.Errorf("serve: batch of %d points but %d output slots", len(pts), len(out))
	}
	for i, p := range pts {
		if err := c.checkPoint(i, p); err != nil {
			return err
		}
	}
	sc := c.scratch.Get().(*dbdc.RepScratch)
	for i, p := range pts {
		out[i] = c.sel.SelectInto(p, sc)
	}
	c.scratch.Put(sc)
	return nil
}
