package serve

import (
	"math/rand"
	"testing"

	"github.com/dbdc-go/dbdc/internal/data"
	"github.com/dbdc-go/dbdc/internal/dbdc"
	"github.com/dbdc-go/dbdc/internal/dbscan"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/index"
	"github.com/dbdc-go/dbdc/internal/model"
)

// buildBudgetedModel runs a two-site round whose sites ship SDBDC-budgeted
// local models (cfg.RepBudget > 0) and returns the training points with
// the resulting global model. The budget changes WHICH representatives
// survive, so the global model differs from the unbudgeted one — the
// parity claim under test is that serving and relabeling still agree on
// whatever model the round produced.
func buildBudgetedModel(t testing.TB, kind model.Kind, budget int, seed int64) ([]geom.Point, *model.GlobalModel) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var pts []geom.Point
	pts = append(pts, data.Blob(rng, geom.Point{0, 0}, 0.3, 140)...)
	pts = append(pts, data.Blob(rng, geom.Point{5, 5}, 0.4, 140)...)
	pts = append(pts, data.Ring(rng, -4, 4, 2, 0.1, 140)...)
	pts = append(pts, data.Uniform(rng, geom.NewRect(geom.Point{-8, -8}, geom.Point{8, 8}), 60)...)
	cfg := dbdc.Config{
		Local:     dbscan.Params{Eps: 0.5, MinPts: 5},
		Model:     kind,
		Index:     index.KindKDTree,
		RepBudget: budget,
	}
	half := len(pts) / 2
	o1, err := dbdc.LocalStep("site-1", pts[:half], cfg)
	if err != nil {
		t.Fatalf("LocalStep site-1: %v", err)
	}
	o2, err := dbdc.LocalStep("site-2", pts[half:], cfg)
	if err != nil {
		t.Fatalf("LocalStep site-2: %v", err)
	}
	if budget > 0 && o1.Budget.Dropped() == 0 && o2.Budget.Dropped() == 0 {
		t.Fatalf("budget %d dropped nothing at either site; test is vacuous", budget)
	}
	global, err := dbdc.GlobalStep([]*model.LocalModel{o1.Model, o2.Model}, cfg)
	if err != nil {
		t.Fatalf("GlobalStep: %v", err)
	}
	if global.Empty() {
		t.Fatal("budgeted model is the empty sentinel; pick denser parameters")
	}
	return pts, global
}

// TestClassifierBudgetedModelParity is the serving half of the SDBDC
// budget differential (the wire half lives in internal/transport's
// TestBudgetedRoundE2E): a global model built from budget-truncated local
// models must classify online exactly like dbdc.Relabel labels offline,
// for every model kind and index kind. Budget truncation only removes
// representatives — it must not open any gap between the two readers of
// the shared representative-choice rule.
func TestClassifierBudgetedModelParity(t *testing.T) {
	for _, kind := range model.Kinds() {
		for _, budget := range []int{1, 3} {
			pts, global := buildBudgetedModel(t, kind, budget, 42)
			want, err := dbdc.Relabel(pts, global)
			if err != nil {
				t.Fatalf("%s/b=%d: Relabel: %v", kind, budget, err)
			}
			for _, ik := range index.Kinds() {
				cls, err := NewClassifier(global, ik)
				if err != nil {
					t.Fatalf("%s/b=%d/%s: NewClassifier: %v", kind, budget, ik, err)
				}
				out := makeLabels(len(pts))
				if err := cls.ClassifyBatch(pts, out); err != nil {
					t.Fatalf("%s/b=%d/%s: ClassifyBatch: %v", kind, budget, ik, err)
				}
				for i := range pts {
					if out[i] != want[i] {
						t.Fatalf("%s/b=%d/%s: point %d: online label %v != relabel %v",
							kind, budget, ik, i, out[i], want[i])
					}
				}
			}
		}
	}
}
