package serve

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/dbdc-go/dbdc/internal/dbdc"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/index"
	"github.com/dbdc-go/dbdc/internal/model"
	"github.com/dbdc-go/dbdc/internal/transport"
)

// startTestServer boots a classification front end on a loopback port with
// its own registry and metrics, and tears everything down with the test.
func startTestServer(t *testing.T, maxBatch int) (*Server, *Registry, *Metrics) {
	t.Helper()
	reg := NewRegistry(index.KindKDTree)
	m := NewMetrics(reg)
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		Registry: reg,
		Metrics:  m,
		Timeout:  5 * time.Second,
		MaxBatch: maxBatch,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	})
	return srv, reg, m
}

// TestServerEndToEnd drives the full network path: the labels a client
// receives over TCP must match an in-process Relabel of the same points,
// and the reply version must be the registry's.
func TestServerEndToEnd(t *testing.T) {
	srv, reg, m := startTestServer(t, 0)
	pts, global := buildTestModel(t, model.RepScor, 42)
	if _, err := reg.Publish(global); err != nil {
		t.Fatal(err)
	}
	want, err := dbdc.Relabel(pts, global)
	if err != nil {
		t.Fatal(err)
	}

	client, err := Dial(srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Single-point requests.
	for _, i := range []int{0, len(pts) / 2, len(pts) - 1} {
		id, version, err := client.Classify(pts[i])
		if err != nil {
			t.Fatalf("Classify(%d): %v", i, err)
		}
		if version != 1 {
			t.Fatalf("Classify(%d) reported version %d, want 1", i, version)
		}
		if id != want[i] {
			t.Fatalf("Classify(%d) = %v, want %v", i, id, want[i])
		}
	}
	// Batch request over the same persistent connection.
	labels, version, err := client.ClassifyBatch(pts)
	if err != nil {
		t.Fatalf("ClassifyBatch: %v", err)
	}
	if version != 1 {
		t.Fatalf("batch reported version %d, want 1", version)
	}
	for i := range pts {
		if labels[i] != want[i] {
			t.Fatalf("batch label %d = %v, want %v", i, labels[i], want[i])
		}
	}
	if m.Requests.Load() < 4 || m.Points.Load() < uint64(len(pts))+3 {
		t.Fatalf("metrics: requests=%d points=%d", m.Requests.Load(), m.Points.Load())
	}
	if m.Latency.Count() != m.Requests.Load() {
		t.Fatalf("latency observations %d != requests %d", m.Latency.Count(), m.Requests.Load())
	}
}

// TestServerHotSwapBetweenRequests: a publish between two requests on one
// persistent connection changes the version (and labels) the second
// request sees — the snapshot is pinned per request, not per connection.
func TestServerHotSwapBetweenRequests(t *testing.T) {
	srv, reg, _ := startTestServer(t, 0)
	if _, err := reg.Publish(versionedModel(1)); err != nil {
		t.Fatal(err)
	}
	client, err := Dial(srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	id, version, err := client.Classify(geom.Point{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if version != 1 || int64(id) != 1 {
		t.Fatalf("before swap: version=%d id=%v", version, id)
	}
	if _, err := reg.Publish(versionedModel(2)); err != nil {
		t.Fatal(err)
	}
	id, version, err = client.Classify(geom.Point{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if version != 2 || int64(id) != 2 {
		t.Fatalf("after swap: version=%d id=%v", version, id)
	}
}

// TestServerNoModelYet: requests against an empty registry get a
// retryable MsgError and the connection stays usable.
func TestServerNoModelYet(t *testing.T) {
	srv, reg, m := startTestServer(t, 0)
	client, err := Dial(srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if _, _, err := client.Classify(geom.Point{0, 0}); err == nil ||
		!strings.Contains(err.Error(), "no model published") {
		t.Fatalf("empty registry answered with %v", err)
	}
	// Same connection works once a model lands: "no model" is not fatal.
	if _, err := reg.Publish(versionedModel(1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.Classify(geom.Point{0, 0}); err != nil {
		t.Fatalf("classify after publish on the same connection: %v", err)
	}
	if m.Errors.Load() != 1 {
		t.Fatalf("error counter %d, want 1", m.Errors.Load())
	}
}

// TestServerRejectsBadRequests covers the protocol-violation paths, each
// on a fresh connection because violations close the connection.
func TestServerRejectsBadRequests(t *testing.T) {
	srv, reg, _ := startTestServer(t, 4)
	if _, err := reg.Publish(versionedModel(1)); err != nil {
		t.Fatal(err)
	}
	expectErr := func(name, fragment string, f func(c *Client) error) {
		t.Helper()
		c, err := Dial(srv.Addr(), 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := f(c); err == nil || !strings.Contains(err.Error(), fragment) {
			t.Fatalf("%s: got %v, want error containing %q", name, err, fragment)
		}
	}
	expectErr("wrong dimension", "dimension", func(c *Client) error {
		_, _, err := c.Classify(geom.Point{1, 2, 3})
		return err
	})
	expectErr("non-finite coordinate", "finite", func(c *Client) error {
		_, _, err := c.Classify(geom.Point{nan(), 0})
		return err
	})
	expectErr("oversized batch", "exceeds the cap", func(c *Client) error {
		big := make([]geom.Point, 5) // cap is 4
		for i := range big {
			big[i] = geom.Point{0, 0}
		}
		_, _, err := c.ClassifyBatch(big)
		return err
	})
	expectErr("empty batch frame", "want exactly 1", func(c *Client) error {
		_, _, err := c.exchange(transport.MsgClassify, nil)
		return err
	})
	expectErr("unknown frame type", "unexpected message type", func(c *Client) error {
		_, _, err := c.exchange(transport.MsgError, []geom.Point{{0, 0}})
		return err
	})
}

// TestServerCorruptFrame: a frame with a broken checksum gets a
// best-effort MsgError back and the connection is closed server-side.
func TestServerCorruptFrame(t *testing.T) {
	srv, reg, _ := startTestServer(t, 0)
	if _, err := reg.Publish(versionedModel(1)); err != nil {
		t.Fatal(err)
	}
	conn, err := net.DialTimeout("tcp", srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var buf bytes.Buffer
	if _, err := transport.WriteFrame(&buf, transport.MsgClassify, transport.EncodePoints([]geom.Point{{0, 0}})); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	frame[len(frame)-1] ^= 0xff // corrupt the payload under the CRC
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	msgType, payload, _, err := transport.ReadFrame(conn)
	if err != nil {
		t.Fatalf("no error reply to a corrupt frame: %v", err)
	}
	if msgType != transport.MsgError || !strings.Contains(string(payload), "checksum") {
		t.Fatalf("corrupt frame answered with type 0x%02x payload %q", msgType, payload)
	}
}
