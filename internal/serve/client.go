package serve

import (
	"fmt"
	"net"
	"time"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/transport"
)

// Client speaks the classification protocol over one persistent
// connection. It is not safe for concurrent use — give each goroutine its
// own Client (the load generator does exactly that).
type Client struct {
	conn    net.Conn
	timeout time.Duration
}

// Dial connects to a classification front end.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("serve: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, timeout: timeout}, nil
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }

// Classify labels one point against the server's current model and
// returns the label with the model version that produced it.
func (c *Client) Classify(p geom.Point) (cluster.ID, uint64, error) {
	labels, version, err := c.exchange(transport.MsgClassify, []geom.Point{p})
	if err != nil {
		return cluster.Noise, 0, err
	}
	if len(labels) != 1 {
		return cluster.Noise, version, fmt.Errorf("serve: reply carries %d labels, want 1", len(labels))
	}
	return labels[0], version, nil
}

// ClassifyBatch labels a batch of points in one round trip. The returned
// labels align positionally with pts.
func (c *Client) ClassifyBatch(pts []geom.Point) ([]cluster.ID, uint64, error) {
	return c.exchange(transport.MsgClassifyBatch, pts)
}

// exchange performs one request/response round trip on the persistent
// connection.
func (c *Client) exchange(msgType byte, pts []geom.Point) ([]cluster.ID, uint64, error) {
	c.conn.SetDeadline(time.Now().Add(c.timeout))
	if _, err := transport.WriteFrame(c.conn, msgType, transport.EncodePoints(pts)); err != nil {
		return nil, 0, err
	}
	replyType, payload, _, err := transport.ReadFrame(c.conn)
	if err != nil {
		return nil, 0, err
	}
	switch replyType {
	case transport.MsgClassifyReply:
		version, labels, err := DecodeReply(payload)
		if err != nil {
			return nil, 0, err
		}
		if len(labels) != len(pts) {
			return nil, version, fmt.Errorf("serve: reply carries %d labels for %d points", len(labels), len(pts))
		}
		return labels, version, nil
	case transport.MsgError:
		return nil, 0, fmt.Errorf("serve: server reported: %s", payload)
	default:
		return nil, 0, fmt.Errorf("serve: unexpected message type 0x%02x", replyType)
	}
}
