package serve

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/dbdc-go/dbdc/internal/index"
)

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram is not zero-valued")
	}
	// 1000 samples spread uniformly over 0..100ms: the quantile estimate
	// must land within one bucket width of the true quantile.
	const n = 1000
	for i := 0; i < n; i++ {
		h.Observe(time.Duration(i) * 100 * time.Microsecond)
	}
	if h.Count() != n {
		t.Fatalf("count %d, want %d", h.Count(), n)
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.5, 50 * time.Millisecond},
		{0.95, 95 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
	} {
		got := h.Quantile(tc.q)
		// The containing buckets are ~40-80ms and ~80-160ms wide; accept
		// an estimate anywhere within a factor of two of the truth.
		if got < tc.want/2 || got > tc.want*2 {
			t.Errorf("q%.2f = %s, want within 2x of %s", tc.q, got, tc.want)
		}
	}
	if mean := h.Mean(); mean < 45*time.Millisecond || mean > 55*time.Millisecond {
		t.Errorf("mean %s, want ~50ms", mean)
	}
	// Overflow clamps to the last bound instead of inventing data.
	h2 := NewHistogram()
	h2.Observe(time.Hour)
	last := time.Duration(latencyBuckets[len(latencyBuckets)-1] * float64(time.Second))
	if got := h2.Quantile(0.5); got != last {
		t.Errorf("overflow quantile %s, want clamp to %s", got, last)
	}
}

// parsePrometheus is a minimal text-format 0.0.4 parser: it validates the
// structural rules a real scraper enforces (HELP/TYPE precede samples,
// sample lines are `name{labels} value`) and returns the samples.
func parsePrometheus(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]bool)
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("unknown metric type in %q", line)
			}
			typed[fields[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unrecognised comment line %q", line)
		}
		// Sample: name{labels} value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("sample %q has unparsable value: %v", line, err)
		}
		base := key
		if i := strings.IndexByte(base, '{'); i >= 0 {
			if !strings.HasSuffix(base, "}") {
				t.Fatalf("sample %q has unterminated label set", line)
			}
			base = base[:i]
		}
		// Histogram child series (_bucket/_sum/_count) inherit the family
		// TYPE; everything else must carry its own.
		family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(base, "_bucket"), "_sum"), "_count")
		if !typed[base] && !typed[family] {
			t.Fatalf("sample %q appeared before its TYPE line", line)
		}
		samples[key] = val
	}
	return samples
}

func TestMetricsPrometheusEndpoint(t *testing.T) {
	reg := NewRegistry(index.KindKDTree)
	m := NewMetrics(reg)
	if _, err := reg.Publish(versionedModel(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish(versionedModel(2)); err != nil {
		t.Fatal(err)
	}
	m.Requests.Add(10)
	m.Errors.Add(2)
	m.Points.Add(40)
	m.Noise.Add(4)
	m.ActiveConns.Add(3)
	for i := 1; i <= 100; i++ {
		m.Latency.Observe(time.Duration(i) * time.Millisecond)
	}

	closeFn, addr, err := m.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Fatalf("content type %q is not the text exposition format", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := parsePrometheus(t, string(body))

	expect := map[string]float64{
		"dbdc_classify_requests_total":        10,
		"dbdc_classify_errors_total":          2,
		"dbdc_classify_points_total":          40,
		"dbdc_classify_noise_points_total":    4,
		"dbdc_classify_active_connections":    3,
		"dbdc_model_version":                  2,
		"dbdc_model_representatives":          1,
		"dbdc_model_clusters":                 1,
		"dbdc_model_publications_total":       2,
		"dbdc_model_rejected_total":           0,
		"dbdc_classify_latency_seconds_count": 100,
	}
	for name, want := range expect {
		got, ok := samples[name]
		if !ok {
			t.Errorf("metric %s missing from exposition", name)
			continue
		}
		if got != want {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}
	if sum := samples["dbdc_classify_latency_seconds_sum"]; math.Abs(sum-5.050) > 0.001 {
		t.Errorf("latency sum %g, want 5.05", sum)
	}
	// Cumulative le buckets must be monotone non-decreasing and end at the
	// +Inf bucket equalling _count.
	var prev float64
	for _, b := range latencyBuckets {
		key := fmt.Sprintf("dbdc_classify_latency_seconds_bucket{le=%q}", formatFloat(b))
		v, ok := samples[key]
		if !ok {
			t.Fatalf("bucket %s missing", key)
		}
		if v < prev {
			t.Fatalf("bucket %s = %g below previous %g: not cumulative", key, v, prev)
		}
		prev = v
	}
	inf, ok := samples[`dbdc_classify_latency_seconds_bucket{le="+Inf"}`]
	if !ok || inf != 100 {
		t.Fatalf("+Inf bucket = %g (present=%v), want 100", inf, ok)
	}
	for _, q := range []string{"0.5", "0.95", "0.99"} {
		key := fmt.Sprintf("dbdc_classify_latency_quantile_seconds{quantile=%q}", q)
		if v, ok := samples[key]; !ok || v <= 0 {
			t.Errorf("quantile gauge %s = %g (present=%v)", key, v, ok)
		}
	}
	if samples["dbdc_model_epoch_seconds"] <= 0 {
		t.Error("model epoch gauge not set after a publish")
	}
}
