package serve

import (
	"math"
	"math/rand"
	"testing"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/data"
	"github.com/dbdc-go/dbdc/internal/dbdc"
	"github.com/dbdc-go/dbdc/internal/dbscan"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/index"
	"github.com/dbdc-go/dbdc/internal/model"
)

func makeLabels(n int) []cluster.ID { return make([]cluster.ID, n) }

func nan() float64 { return math.NaN() }
func inf() float64 { return math.Inf(1) }

// buildTestModel runs a full two-site DBDC round in-process and returns
// the training points together with the resulting global model — the
// exact artifact a production server would publish into the registry.
func buildTestModel(t testing.TB, kind model.Kind, seed int64) ([]geom.Point, *model.GlobalModel) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var pts []geom.Point
	pts = append(pts, data.Blob(rng, geom.Point{0, 0}, 0.3, 140)...)
	pts = append(pts, data.Blob(rng, geom.Point{5, 5}, 0.4, 140)...)
	pts = append(pts, data.Ring(rng, -4, 4, 2, 0.1, 140)...)
	pts = append(pts, data.Uniform(rng, geom.NewRect(geom.Point{-8, -8}, geom.Point{8, 8}), 60)...)
	cfg := dbdc.Config{
		Local: dbscan.Params{Eps: 0.5, MinPts: 5},
		Model: kind,
		Index: index.KindKDTree,
	}
	half := len(pts) / 2
	o1, err := dbdc.LocalStep("site-1", pts[:half], cfg)
	if err != nil {
		t.Fatalf("LocalStep site-1: %v", err)
	}
	o2, err := dbdc.LocalStep("site-2", pts[half:], cfg)
	if err != nil {
		t.Fatalf("LocalStep site-2: %v", err)
	}
	global, err := dbdc.GlobalStep([]*model.LocalModel{o1.Model, o2.Model}, cfg)
	if err != nil {
		t.Fatalf("GlobalStep: %v", err)
	}
	if global.Empty() {
		t.Fatal("test model is the empty sentinel; pick denser parameters")
	}
	return pts, global
}

// TestClassifierDifferential is the drift guard of the shared
// representative-choice rule: classifying the training points online must
// be label-identical to dbdc.Relabel, for both local model kinds and every
// index kind the classifier can bulk-load the representatives into.
func TestClassifierDifferential(t *testing.T) {
	for _, kind := range model.Kinds() {
		pts, global := buildTestModel(t, kind, 42)
		want, err := dbdc.Relabel(pts, global)
		if err != nil {
			t.Fatalf("%s: Relabel: %v", kind, err)
		}
		for _, ik := range index.Kinds() {
			cls, err := NewClassifier(global, ik)
			if err != nil {
				t.Fatalf("%s/%s: NewClassifier: %v", kind, ik, err)
			}
			// Batch path.
			out := makeLabels(len(pts))
			if err := cls.ClassifyBatch(pts, out); err != nil {
				t.Fatalf("%s/%s: ClassifyBatch: %v", kind, ik, err)
			}
			for i := range pts {
				if out[i] != want[i] {
					t.Fatalf("%s/%s: point %d: online label %v != relabel %v",
						kind, ik, i, out[i], want[i])
				}
			}
			// Single-point path must agree with the batch path.
			for _, i := range []int{0, len(pts) / 3, len(pts) - 1} {
				id, err := cls.Classify(pts[i])
				if err != nil {
					t.Fatalf("%s/%s: Classify(%d): %v", kind, ik, i, err)
				}
				if id != want[i] {
					t.Fatalf("%s/%s: point %d: Classify %v != relabel %v", kind, ik, i, id, want[i])
				}
			}
		}
	}
}

// TestClassifierEmptySentinel: the all-noise sentinel classifies
// everything as noise, at any dimensionality, without errors.
func TestClassifierEmptySentinel(t *testing.T) {
	cls, err := NewClassifier(&model.GlobalModel{MinPtsGlobal: 2}, index.KindGrid)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []geom.Point{{0}, {1, 2}, {1, 2, 3}} {
		id, err := cls.Classify(p)
		if err != nil {
			t.Fatalf("sentinel Classify(%v): %v", p, err)
		}
		if !id.IsNoise() {
			t.Fatalf("sentinel labelled %v as %v", p, id)
		}
	}
}

// TestClassifierRejectsBadPoints: network input never reaches the
// distance kernels — wrong dimensionality, NaN coordinates and empty
// points fail loudly, and a bad point fails its whole batch atomically.
func TestClassifierRejectsBadPoints(t *testing.T) {
	_, global := buildTestModel(t, model.RepScor, 42)
	cls, err := NewClassifier(global, index.KindKDTree)
	if err != nil {
		t.Fatal(err)
	}
	bad := []geom.Point{
		{1, 2, 3},  // wrong dimension
		{},         // no coordinates
		{nan(), 0}, // NaN
		{0, inf()}, // Inf
	}
	for _, p := range bad {
		if _, err := cls.Classify(p); err == nil {
			t.Errorf("Classify accepted bad point %v", p)
		}
	}
	// All-or-nothing batch: one bad point rejects the batch.
	batch := []geom.Point{{0, 0}, {1, 2, 3}}
	if err := cls.ClassifyBatch(batch, makeLabels(2)); err == nil {
		t.Error("ClassifyBatch accepted a batch with a wrong-dimension point")
	}
	if err := cls.ClassifyBatch(batch[:1], makeLabels(2)); err == nil {
		t.Error("ClassifyBatch accepted mismatched output length")
	}
}
