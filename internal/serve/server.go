package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/transport"
)

// DefaultMaxBatch bounds the points accepted in one MsgClassifyBatch
// request; larger batches are rejected with MsgError before any
// classification work happens.
const DefaultMaxBatch = 8192

// ServerConfig configures the classification front end.
type ServerConfig struct {
	// Registry supplies the current model snapshot per request. Required.
	Registry *Registry
	// Metrics receives the observability signals; nil disables them.
	Metrics *Metrics
	// Timeout is the per-request deadline: reading one request frame and
	// writing its reply must each finish within it. It doubles as the
	// idle timeout between requests on a persistent connection. 0 = 30s.
	Timeout time.Duration
	// MaxBatch caps the points per batch request; 0 = DefaultMaxBatch.
	MaxBatch int
}

// Server is the classification front end: it accepts concurrent
// persistent connections speaking the CRC-checked frame protocol and
// answers MsgClassify / MsgClassifyBatch requests against the registry's
// current snapshot. Every request re-reads the snapshot, so a hot swap
// takes effect between any two requests without disturbing one in flight.
type Server struct {
	cfg ServerConfig
	ln  net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewServer listens on addr (e.g. "127.0.0.1:0") and returns the front
// end. Call Serve to start answering.
func NewServer(addr string, cfg ServerConfig) (*Server, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("serve: server needs a registry")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	return &Server{cfg: cfg, ln: ln, conns: make(map[net.Conn]struct{})}, nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes every open connection and waits for the
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Serve accepts and handles connections until Close. It returns nil on
// clean shutdown.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("serve: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func(conn net.Conn) {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.handleConn(conn)
		}(conn)
	}
}

// handleConn runs the request/response loop of one persistent connection.
func (s *Server) handleConn(conn net.Conn) {
	m := s.cfg.Metrics
	if m != nil {
		m.ActiveConns.Add(1)
		defer m.ActiveConns.Add(-1)
	}
	for {
		// Per-request deadline: the client has Timeout to deliver the next
		// request (idle included), the server Timeout to answer it.
		conn.SetReadDeadline(time.Now().Add(s.cfg.Timeout))
		msgType, payload, _, err := ReadRequest(conn)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return // client hung up between requests: clean end
			}
			// Corrupt frames get a best-effort error reply; timeouts and
			// torn connections do not.
			if errors.Is(err, transport.ErrChecksum) || errors.Is(err, transport.ErrFrameTooLarge) || errors.Is(err, transport.ErrFrameVersion) {
				s.replyError(conn, err.Error())
			}
			return
		}
		if !s.handleRequest(conn, msgType, payload) {
			return
		}
	}
}

// ReadRequest reads one frame, mapping a clean close before the first
// header byte to io.EOF (persistent connections end between requests).
func ReadRequest(conn net.Conn) (byte, []byte, int, error) {
	msgType, payload, n, err := transport.ReadFrame(conn)
	if err != nil && n == 0 {
		var opErr *net.OpError
		if errors.Is(err, io.EOF) || (errors.As(err, &opErr) && !opErr.Timeout()) {
			return 0, nil, 0, io.EOF
		}
	}
	return msgType, payload, n, err
}

// handleRequest answers one decoded request frame and reports whether the
// connection should keep going.
func (s *Server) handleRequest(conn net.Conn, msgType byte, payload []byte) bool {
	start := time.Now()
	m := s.cfg.Metrics
	if m != nil {
		m.Requests.Add(1)
	}
	switch msgType {
	case transport.MsgClassify, transport.MsgClassifyBatch:
	default:
		s.replyError(conn, fmt.Sprintf("serve: unexpected message type 0x%02x", msgType))
		return false
	}
	pts, err := transport.DecodePoints(payload)
	if err != nil {
		s.replyError(conn, err.Error())
		return false
	}
	if msgType == transport.MsgClassify && len(pts) != 1 {
		s.replyError(conn, fmt.Sprintf("serve: MsgClassify carries %d points, want exactly 1", len(pts)))
		return false
	}
	if len(pts) > s.cfg.MaxBatch {
		s.replyError(conn, fmt.Sprintf("serve: batch of %d points exceeds the cap of %d", len(pts), s.cfg.MaxBatch))
		return false
	}
	// One atomic load pins this request to a complete snapshot; a hot
	// swap concurrent with the classification below is invisible here.
	snap := s.cfg.Registry.Current()
	if snap == nil {
		s.replyError(conn, "serve: no model published yet")
		return true // not a protocol violation; the client may retry later
	}
	labels := make([]cluster.ID, len(pts))
	if err := snap.Classifier.ClassifyBatch(pts, labels); err != nil {
		s.replyError(conn, err.Error())
		return false
	}
	if m != nil {
		m.Points.Add(uint64(len(labels)))
		noise := 0
		for _, l := range labels {
			if l == cluster.Noise {
				noise++
			}
		}
		m.Noise.Add(uint64(noise))
	}
	conn.SetWriteDeadline(time.Now().Add(s.cfg.Timeout))
	if _, err := transport.WriteFrame(conn, transport.MsgClassifyReply, EncodeReply(snap.Version, labels)); err != nil {
		if m != nil {
			m.Errors.Add(1)
		}
		return false
	}
	if m != nil {
		m.Latency.Observe(time.Since(start))
	}
	return true
}

// replyError sends a MsgError frame (best effort) and counts it.
func (s *Server) replyError(conn net.Conn, msg string) {
	if m := s.cfg.Metrics; m != nil {
		m.Errors.Add(1)
	}
	conn.SetWriteDeadline(time.Now().Add(s.cfg.Timeout))
	transport.WriteFrame(conn, transport.MsgError, []byte(msg))
}

// EncodeReply serialises a MsgClassifyReply payload: u64 model version,
// u32 count, count little-endian int32 labels.
func EncodeReply(version uint64, labels []cluster.ID) []byte {
	buf := make([]byte, 12+4*len(labels))
	binary.LittleEndian.PutUint64(buf, version)
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(labels)))
	off := 12
	for _, l := range labels {
		binary.LittleEndian.PutUint32(buf[off:], uint32(int32(l)))
		off += 4
	}
	return buf
}

// DecodeReply is the inverse of EncodeReply with bounds checks.
func DecodeReply(buf []byte) (version uint64, labels []cluster.ID, err error) {
	if len(buf) < 12 {
		return 0, nil, fmt.Errorf("serve: truncated classify reply (%d bytes)", len(buf))
	}
	version = binary.LittleEndian.Uint64(buf)
	count := int(binary.LittleEndian.Uint32(buf[8:]))
	if len(buf) != 12+4*count {
		return 0, nil, fmt.Errorf("serve: classify reply advertises %d labels but has %d bytes", count, len(buf))
	}
	labels = make([]cluster.ID, count)
	off := 12
	for i := range labels {
		labels[i] = cluster.ID(int32(binary.LittleEndian.Uint32(buf[off:])))
		off += 4
	}
	return version, labels, nil
}
