package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dbdc-go/dbdc/internal/index"
	"github.com/dbdc-go/dbdc/internal/model"
)

// Snapshot is one published model version: the global model, the
// classifier built from it, and the epoch metadata. Snapshots are
// immutable — a reader that obtained one keeps classifying against it
// undisturbed while newer versions are published, so no request ever
// observes a torn or partially swapped model.
type Snapshot struct {
	// Version is the registry's strictly monotone publication counter,
	// starting at 1 for the first published model.
	Version uint64
	// Global is the published model (immutable).
	Global *model.GlobalModel
	// Classifier serves reads against Global.
	Classifier *Classifier
	// Published is when the swap happened.
	Published time.Time
}

// Registry is a versioned model registry with lock-free hot swap: training
// rounds (transport.Server, transport.UpdateServer) publish freshly
// rebuilt global models into it, classification readers pick up the
// current snapshot with one atomic pointer load. Publication is
// serialized (classifier construction happens outside the reader path, so
// readers never block on a round in flight), reads are wait-free.
type Registry struct {
	kind index.Kind

	mu  sync.Mutex // serializes publishers
	cur atomic.Pointer[Snapshot]

	// published counts successful Publish calls; rejected counts models
	// that failed validation or classifier construction.
	published atomic.Uint64
	rejected  atomic.Uint64
}

// NewRegistry returns an empty registry whose classifiers index
// representatives with the given index kind ("" = kd-tree).
func NewRegistry(kind index.Kind) *Registry {
	return &Registry{kind: kind}
}

// Publish validates the model, builds its classifier and atomically swaps
// it in as the new current snapshot. Versions are strictly monotone in
// publication order; the swap itself is a single pointer store, so readers
// switch between complete snapshots only. A model that fails validation or
// classifier construction is rejected and leaves the current snapshot in
// place.
func (r *Registry) Publish(global *model.GlobalModel) (*Snapshot, error) {
	if global == nil {
		r.rejected.Add(1)
		return nil, fmt.Errorf("serve: refusing to publish nil global model")
	}
	if err := global.Validate(); err != nil {
		r.rejected.Add(1)
		return nil, fmt.Errorf("serve: refusing to publish invalid global model: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	// Build outside the reader path (readers keep serving the previous
	// snapshot), inside the publisher lock (versions stay monotone and
	// version N's classifier is always built from version N's model).
	cls, err := NewClassifier(global, r.kind)
	if err != nil {
		r.rejected.Add(1)
		return nil, err
	}
	version := uint64(1)
	if prev := r.cur.Load(); prev != nil {
		version = prev.Version + 1
	}
	snap := &Snapshot{
		Version:    version,
		Global:     global,
		Classifier: cls,
		Published:  time.Now(),
	}
	r.cur.Store(snap)
	r.published.Add(1)
	return snap, nil
}

// Current returns the latest snapshot, or nil before the first successful
// Publish. Wait-free; the returned snapshot stays valid (and immutable)
// regardless of later publications.
func (r *Registry) Current() *Snapshot { return r.cur.Load() }

// Version returns the current model version, 0 before the first Publish.
func (r *Registry) Version() uint64 {
	if s := r.cur.Load(); s != nil {
		return s.Version
	}
	return 0
}

// Published returns the number of successful publications.
func (r *Registry) Published() uint64 { return r.published.Load() }

// Rejected returns the number of models refused (validation or classifier
// construction failure).
func (r *Registry) Rejected() uint64 { return r.rejected.Load() }

// PublishFunc returns a callback suitable for transport hooks
// (transport.Server.SetOnGlobal, transport.UpdateServer.SetOnGlobal):
// it publishes every model and reports failures to onErr (nil = dropped
// silently). The transport layer stays ignorant of the serve package;
// commands wire the two together with this adapter.
func (r *Registry) PublishFunc(onErr func(error)) func(*model.GlobalModel) {
	return func(g *model.GlobalModel) {
		if _, err := r.Publish(g); err != nil && onErr != nil {
			onErr(err)
		}
	}
}
