package serve

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync/atomic"
	"time"
)

// latencyBuckets are the fixed histogram bucket upper bounds in seconds:
// 20 exponential buckets from 10µs to ~5s (factor ~2), wide enough for an
// in-process loopback hit and a cross-continent round trip alike. Fixed
// buckets keep Observe lock-free (one atomic add) and make scrapes from
// different processes mergeable.
var latencyBuckets = func() []float64 {
	b := make([]float64, 0, 20)
	for v := 10e-6; len(b) < 20; v *= 2 {
		b = append(b, v)
	}
	return b
}()

// Histogram is a fixed-bucket latency histogram with lock-free observation
// and Prometheus-compatible cumulative export. The zero value is not
// usable; use NewHistogram.
type Histogram struct {
	bounds []float64 // upper bounds in seconds, ascending
	counts []atomic.Uint64
	inf    atomic.Uint64 // observations above the last bound
	count  atomic.Uint64
	sumNs  atomic.Int64
}

// NewHistogram returns a histogram over the package's fixed latency
// buckets.
func NewHistogram() *Histogram {
	return &Histogram{
		bounds: latencyBuckets,
		counts: make([]atomic.Uint64, len(latencyBuckets)),
	}
}

// Observe records one latency sample. Safe for concurrent use.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	// Binary search for the first bound >= s.
	i := sort.SearchFloat64s(h.bounds, s)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed latencies.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNs.Load()) }

// Mean returns the average observed latency, 0 with no observations.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(uint64(h.sumNs.Load()) / n)
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// inside the containing bucket, the standard Prometheus histogram_quantile
// estimator. Returns 0 with no observations; samples beyond the last
// bucket clamp to the last bound.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	lower := 0.0
	for i, bound := range h.bounds {
		c := h.counts[i].Load()
		if c > 0 && float64(cum)+float64(c) >= rank {
			within := (rank - float64(cum)) / float64(c)
			return time.Duration((lower + within*(bound-lower)) * float64(time.Second))
		}
		cum += c
		lower = bound
	}
	return time.Duration(h.bounds[len(h.bounds)-1] * float64(time.Second))
}

// snapshotCumulative returns the cumulative bucket counts aligned with the
// bounds, plus the total. Cumulative counts are what the Prometheus text
// format wants (le buckets include everything below).
func (h *Histogram) snapshotCumulative() (cum []uint64, total uint64) {
	cum = make([]uint64, len(h.bounds))
	var run uint64
	for i := range h.bounds {
		run += h.counts[i].Load()
		cum[i] = run
	}
	return cum, run + h.inf.Load()
}

// Metrics aggregates the serving-side observability signals: request/error
// counters, a latency histogram, and model-version gauges read live from
// the registry. All methods are safe for concurrent use.
type Metrics struct {
	start    time.Time
	registry *Registry

	// Requests counts classification requests (frames) handled;
	// Errors the subset answered with MsgError; Points and Noise count
	// classified points and the noise-labelled subset; ActiveConns tracks
	// open classification connections.
	Requests    atomic.Uint64
	Errors      atomic.Uint64
	Points      atomic.Uint64
	Noise       atomic.Uint64
	ActiveConns atomic.Int64

	// Latency is the per-request service-time histogram (request decoded →
	// reply written).
	Latency *Histogram
}

// NewMetrics returns a metrics hub bound to the registry (nil is allowed;
// the model gauges then report zero).
func NewMetrics(reg *Registry) *Metrics {
	return &Metrics{start: time.Now(), registry: reg, Latency: NewHistogram()}
}

// QPS returns the average request rate since process start — a coarse
// convenience figure; rate() over the scraped counters is the precise one.
func (m *Metrics) QPS() float64 {
	el := time.Since(m.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(m.Requests.Load()) / el
}

// WritePrometheus renders all metrics in the Prometheus text exposition
// format (version 0.0.4), the format every Prometheus-compatible scraper
// parses.
func (m *Metrics) WritePrometheus(w io.Writer) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gaugeF := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	counter("dbdc_classify_requests_total", "Classification requests handled.", m.Requests.Load())
	counter("dbdc_classify_errors_total", "Classification requests answered with an error.", m.Errors.Load())
	counter("dbdc_classify_points_total", "Points classified.", m.Points.Load())
	counter("dbdc_classify_noise_points_total", "Classified points labelled noise.", m.Noise.Load())
	gaugeF("dbdc_classify_active_connections", "Open classification connections.", float64(m.ActiveConns.Load()))
	gaugeF("dbdc_classify_qps", "Average classification requests per second since start.", m.QPS())
	gaugeF("dbdc_process_uptime_seconds", "Seconds since the serving process started.", time.Since(m.start).Seconds())

	// Latency histogram + precomputed quantile gauges (p50/p95/p99). The
	// histogram is the source of truth; the gauges save the dashboard a
	// histogram_quantile() for the three common percentiles.
	h := m.Latency
	name := "dbdc_classify_latency_seconds"
	fmt.Fprintf(w, "# HELP %s Classification request service time.\n# TYPE %s histogram\n", name, name)
	cum, total := h.snapshotCumulative()
	for i, bound := range h.bounds {
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(bound), cum[i])
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, total)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum().Seconds())
	fmt.Fprintf(w, "%s_count %d\n", name, total)
	qname := "dbdc_classify_latency_quantile_seconds"
	fmt.Fprintf(w, "# HELP %s Precomputed latency percentiles (p50/p95/p99).\n# TYPE %s gauge\n", qname, qname)
	for _, q := range []float64{0.5, 0.95, 0.99} {
		fmt.Fprintf(w, "%s{quantile=%q} %g\n", qname, formatFloat(q), h.Quantile(q).Seconds())
	}

	// Model gauges from the registry: version (strictly monotone across
	// hot swaps), publication epoch, and model shape.
	var version, reps, clusters uint64
	var epoch float64
	var published, rejected uint64
	if m.registry != nil {
		published = m.registry.Published()
		rejected = m.registry.Rejected()
		if s := m.registry.Current(); s != nil {
			version = s.Version
			epoch = float64(s.Published.UnixNano()) / 1e9
			reps = uint64(len(s.Global.Reps))
			clusters = uint64(s.Global.NumClusters)
		}
	}
	gaugeF("dbdc_model_version", "Version of the currently served global model (0 = none yet).", float64(version))
	gaugeF("dbdc_model_epoch_seconds", "Unix time the current model version was published.", epoch)
	gaugeF("dbdc_model_representatives", "Representatives in the currently served global model.", float64(reps))
	gaugeF("dbdc_model_clusters", "Global clusters in the currently served model.", float64(clusters))
	counter("dbdc_model_publications_total", "Successful model publications into the registry.", published)
	counter("dbdc_model_rejected_total", "Models refused by the registry (validation or build failure).", rejected)
}

// formatFloat renders a float the way Prometheus label values expect
// (shortest representation, no exponent surprises for our magnitudes).
func formatFloat(v float64) string { return fmt.Sprintf("%g", v) }

// ServeHTTP implements http.Handler: a GET returns the Prometheus text
// exposition.
func (m *Metrics) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m.WritePrometheus(w)
}

// ListenAndServe exposes the metrics on addr under /metrics (and on / for
// curl convenience) until the returned closer is called. It binds
// synchronously — the endpoint is scrapable when ListenAndServe returns —
// and serves in the background.
func (m *Metrics) ListenAndServe(addr string) (closeFn func() error, boundAddr string, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("serve: metrics listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", m)
	mux.Handle("/", m)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return srv.Close, ln.Addr().String(), nil
}
