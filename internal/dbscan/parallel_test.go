package dbscan

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/index"
)

// uniformPoints returns n points uniform in [0, side)^2 — denser and more
// boundary-heavy than twoBlobs, to stress the merge phase with many
// inter-chunk cluster bridges.
func uniformPoints(rng *rand.Rand, n int, side float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{rng.Float64() * side, rng.Float64() * side}
	}
	return pts
}

// TestRunParallelDifferential is the differential guarantee of RunParallel:
// across index kinds, worker counts and data shapes, the core partition is
// byte-identical to the sequential Run, noise is identical, border points
// land on an adjacent cluster, and the region-query accounting matches
// exactly.
func TestRunParallelDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	blob, _ := twoBlobs(rng, 150)
	datasets := []struct {
		name   string
		pts    []geom.Point
		params Params
	}{
		{"blobs", blob, Params{Eps: 0.5, MinPts: 5}},
		{"uniform", uniformPoints(rng, 800, 10), Params{Eps: 0.35, MinPts: 4}},
		{"sparse", uniformPoints(rng, 200, 100), Params{Eps: 1, MinPts: 3}},
	}
	for _, ds := range datasets {
		for _, kind := range index.Kinds() {
			idx, err := index.Build(kind, ds.pts, geom.Euclidean{}, ds.params.Eps)
			if err != nil {
				t.Fatalf("%s/%s: build: %v", ds.name, kind, err)
			}
			seq, err := Run(idx, ds.params, Options{CollectSpecificCores: true})
			if err != nil {
				t.Fatalf("%s/%s: sequential: %v", ds.name, kind, err)
			}
			for _, workers := range []int{2, 4, 8} {
				t.Run(fmt.Sprintf("%s/%s/workers=%d", ds.name, kind, workers), func(t *testing.T) {
					par, err := RunParallel(idx, ds.params, Options{
						CollectSpecificCores: true,
						Workers:              workers,
					})
					if err != nil {
						t.Fatal(err)
					}
					assertParallelMatches(t, idx, ds.params, seq, par)
				})
			}
		}
	}
}

// assertParallelMatches checks every documented RunParallel guarantee
// against the sequential result.
func assertParallelMatches(t *testing.T, idx index.Index, params Params, seq, par *Result) {
	t.Helper()
	if !reflect.DeepEqual(par.Core, seq.Core) {
		t.Fatal("core flags differ from sequential run")
	}
	if got, want := par.NumClusters(), seq.NumClusters(); got != want {
		t.Fatalf("NumClusters = %d, want %d", got, want)
	}
	// Exactly one region query per object plus one per selected specific
	// core point. The parallel Scor set may differ in size from the
	// sequential one, so the totals are compared against the accounting
	// identity rather than each other.
	wantQueries := len(seq.Core)
	for _, scor := range par.Scor {
		wantQueries += len(scor)
	}
	if got := par.RangeQueries; got != wantQueries {
		t.Fatalf("RangeQueries = %d, want %d (objects + specific cores)", got, wantQueries)
	}
	metric := idx.Metric()
	for i := range seq.Core {
		switch {
		case seq.Core[i]:
			// Core partition must be byte-identical, numbering included.
			if par.Labels[i] != seq.Labels[i] {
				t.Fatalf("core %d: label %d, sequential %d", i, par.Labels[i], seq.Labels[i])
			}
		case seq.Labels[i] == cluster.Noise:
			if par.Labels[i] != cluster.Noise {
				t.Fatalf("noise %d: parallel label %d", i, par.Labels[i])
			}
		default:
			// Border point: must belong to the cluster of some core neighbor
			// (the lowest-index one, per the documented tie rule).
			if par.Labels[i] < 0 {
				t.Fatalf("border %d: parallel marked noise", i)
			}
			ok := false
			for _, j := range idx.Range(idx.Point(i), params.Eps) {
				if seq.Core[j] && par.Labels[j] == par.Labels[i] {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("border %d: label %d has no adjacent core", i, par.Labels[i])
			}
		}
	}
	// Specific core sets may legitimately differ in membership (selection
	// order differs) but must satisfy Definition 6 for the same partition:
	// pairwise non-coverage and complete coverage of the cluster's cores,
	// with Definition 7 ranges at least Eps.
	for id, scor := range par.Scor {
		for a := 0; a < len(scor); a++ {
			for b := a + 1; b < len(scor); b++ {
				if metric.Distance(idx.Point(scor[a]), idx.Point(scor[b])) <= params.Eps {
					t.Fatalf("cluster %d: specific cores %d and %d cover each other", id, scor[a], scor[b])
				}
			}
		}
	}
	for i := range par.Core {
		if !par.Core[i] {
			continue
		}
		covered := false
		for _, s := range par.Scor[par.Labels[i]] {
			if metric.Distance(idx.Point(s), idx.Point(i)) <= params.Eps {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("core %d not covered by any specific core of cluster %d", i, par.Labels[i])
		}
	}
	for s, eps := range par.SpecificEps {
		if eps < params.Eps {
			t.Fatalf("specific eps of %d = %v < Eps %v", s, eps, params.Eps)
		}
	}
}

// TestRunDelegatesToParallel: Options.Workers > 1 routes Run through
// RunParallel.
func TestRunDelegatesToParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := uniformPoints(rng, 400, 10)
	idx := index.NewLinear(pts, geom.Euclidean{})
	params := Params{Eps: 0.4, MinPts: 4}
	viaRun, err := Run(idx, params, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := RunParallel(idx, params, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaRun.Labels, direct.Labels) {
		t.Fatal("Run(Workers=4) differs from RunParallel")
	}
	if viaRun.RangeQueries != direct.RangeQueries {
		t.Fatal("RangeQueries differ between Run(Workers=4) and RunParallel")
	}
}

// TestRunParallelDeterministic: the parallel result must not depend on the
// worker count or scheduling — repeated runs agree bit-for-bit.
func TestRunParallelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := uniformPoints(rng, 600, 8)
	idx := index.NewLinear(pts, geom.Euclidean{})
	params := Params{Eps: 0.3, MinPts: 4}
	var ref *Result
	for _, workers := range []int{1, 2, 3, 4, 7, 16} {
		res, err := RunParallel(idx, params, Options{CollectSpecificCores: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(res.Labels, ref.Labels) {
			t.Fatalf("workers=%d: labels differ from workers=1", workers)
		}
		if !reflect.DeepEqual(res.Scor, ref.Scor) {
			t.Fatalf("workers=%d: specific cores differ from workers=1", workers)
		}
		if !reflect.DeepEqual(res.SpecificEps, ref.SpecificEps) {
			t.Fatalf("workers=%d: specific eps differ from workers=1", workers)
		}
	}
}

// TestRunParallelEdgeCases covers empty and tiny inputs and the
// worker-clamping paths.
func TestRunParallelEdgeCases(t *testing.T) {
	params := Params{Eps: 1, MinPts: 2}
	empty, err := RunParallel(index.NewLinear(nil, nil), params, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if empty.NumClusters() != 0 || empty.RangeQueries != 0 {
		t.Fatal("empty input must produce an empty result")
	}
	one, err := RunParallel(index.NewLinear([]geom.Point{{0, 0}}, nil), params, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if one.Labels[0] != cluster.Noise {
		t.Fatalf("single point below MinPts must be noise, got %v", one.Labels[0])
	}
	if _, err := RunParallel(index.NewLinear(nil, nil), Params{Eps: -1, MinPts: 1}, Options{}); err == nil {
		t.Fatal("invalid params must be rejected")
	}
}
