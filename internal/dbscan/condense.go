package dbscan

import (
	"math"
	"sync"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/index"
)

// condenseSpecificCores runs the condensation phase of RunParallel —
// specific core selection (Definition 6) followed by the specific ε-ranges
// (Definition 7) — with per-cluster parallelism. The greedy selection is a
// strict left-to-right fold within each cluster (whether point i is kept
// depends on the points kept before it), so it cannot be split *inside* a
// cluster without changing the selected set; but clusters never interact
// during condensation, which makes the cluster the natural parallel unit.
// Workers pull whole clusters off a shared cursor and run the identical
// ascending-index greedy per cluster, so the output — Scor order included —
// is byte-identical to the sequential fold for any worker count.
//
// workers ≤ 1 keeps the sequential path (no goroutines, no merge copies).
func (r *Result) condenseSpecificCores(idx index.Index, workers int) {
	metric := idx.Metric()
	st := index.StoreOf(idx)
	if workers <= 1 {
		var bs batchScratch
		for i := range r.Core {
			if r.Core[i] {
				r.maybeAddSpecificCore(idx, metric, st, r.Labels[i], i, &bs)
			}
		}
		r.computeSpecificEps(idx, metric, st, &bs)
		return
	}

	// Group the core points per cluster, ascending. A single pass over the
	// labeling preserves index order within every cluster — the exact order
	// the sequential greedy folds in.
	numClusters := r.Labels.NumClusters()
	if numClusters == 0 {
		return
	}
	coresByCluster := make([][]int, numClusters)
	for i := range r.Core {
		if r.Core[i] {
			id := r.Labels[i]
			coresByCluster[id] = append(coresByCluster[id], i)
		}
	}
	if workers > numClusters {
		workers = numClusters
	}

	// Per-cluster condensation into private outputs. Clusters vary wildly
	// in size, so instead of a static split the workers pull whole clusters
	// off a shared cursor — dynamic load balancing with one tiny critical
	// section per cluster.
	type condensed struct {
		scor    []int
		eps     []float64 // aligned with scor
		queries int
	}
	out := make([]condensed, numClusters)
	var cursor int
	var mu sync.Mutex
	next := func() int {
		mu.Lock()
		defer mu.Unlock()
		if cursor >= numClusters {
			return -1
		}
		c := cursor
		cursor++
		return c
	}

	sq, hasSq := geom.AsSquared(metric)
	eps2 := r.Params.Eps * r.Params.Eps
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []int
			var bs batchScratch
			for {
				c := next()
				if c < 0 {
					return
				}
				cores := coresByCluster[c]
				// Definition 6: greedy coverage in ascending core order —
				// keep a core point iff no already-kept one covers it. The
				// store path runs the same comparisons through the batched
				// kernels by id (identical verdicts; see coveredByStore).
				var scor []int
				for _, q := range cores {
					qp := idx.Point(q)
					covered := false
					switch {
					case st != nil:
						covered = coveredByStore(st, bs.grid(cluster.ID(c)), scor, q, r.Params.Eps, eps2, &bs)
					case hasSq:
						for _, s := range scor {
							if sq.DistanceSq(idx.Point(s), qp) <= eps2 {
								covered = true
								break
							}
						}
					default:
						for _, s := range scor {
							if metric.Distance(idx.Point(s), qp) <= r.Params.Eps {
								covered = true
								break
							}
						}
					}
					if !covered {
						scor = append(scor, q)
					}
				}
				// Definition 7: ε_s = Eps + max dist to core neighbors.
				eps := make([]float64, len(scor))
				for k, s := range scor {
					sp := idx.Point(s)
					buf = index.RangeIntoID(idx, s, r.Params.Eps, buf)
					var maxDist float64
					switch {
					case st != nil:
						maxDist = math.Sqrt(maxCoreNeighborSq(st, r.Core, buf, s, &bs))
					case hasSq:
						var maxSq float64
						for _, ni := range buf {
							if ni == s || !r.Core[ni] {
								continue
							}
							if d2 := sq.DistanceSq(sp, idx.Point(ni)); d2 > maxSq {
								maxSq = d2
							}
						}
						maxDist = math.Sqrt(maxSq)
					default:
						for _, ni := range buf {
							if ni == s || !r.Core[ni] {
								continue
							}
							if d := metric.Distance(sp, idx.Point(ni)); d > maxDist {
								maxDist = d
							}
						}
					}
					eps[k] = r.Params.Eps + maxDist
				}
				out[c] = condensed{scor: scor, eps: eps, queries: len(scor)}
			}
		}()
	}
	wg.Wait()

	// Sequential merge in cluster order: maps see exactly the writes the
	// sequential fold would have made.
	for c := range out {
		if len(out[c].scor) == 0 {
			continue
		}
		r.Scor[cluster.ID(c)] = out[c].scor
		for k, s := range out[c].scor {
			r.SpecificEps[s] = out[c].eps[k]
		}
		r.RangeQueries += out[c].queries
	}
}
