package dbscan

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/index"
)

// shardWorkerCounts are the worker counts the shard-path suites sweep:
// serial, small, and whatever the host offers.
func shardWorkerCounts() []int {
	counts := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
		counts = append(counts, p)
	}
	return counts
}

// storeFrom builds a flat store out of a point slice for the store-backed
// index constructors (the shard path only engages on store-backed indexes).
func storeFrom(t *testing.T, pts []geom.Point) *geom.Store {
	t.Helper()
	st, err := geom.FromPoints(pts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRunParallelShardDifferential extends TestRunParallelDifferential to
// the spatial shard path: over store-backed indexes of every kind, worker
// counts {1, 4, GOMAXPROCS} and data shapes chosen to stress the grid
// partitioner — duplicates piling into single cells, points exactly on cell
// boundaries, 1-D and 8-D strides — the shard-parallel result upholds every
// documented RunParallel guarantee against the sequential Run, and the runs
// really take the shard path (Shards ≥ 2).
func TestRunParallelShardDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	blob, _ := twoBlobs(rng, 150)

	// Duplicate-heavy: 100 distinct locations × 6 exact copies each, so
	// whole stacks of identical rows land in one cell and on its halo.
	dup := make([]geom.Point, 0, 600)
	for i := 0; i < 100; i++ {
		p := geom.Point{rng.Float64() * 10, rng.Float64() * 10}
		for c := 0; c < 6; c++ {
			dup = append(dup, geom.Point{p[0], p[1]})
		}
	}

	// Exact-boundary lattice: every coordinate a multiple of the spacing,
	// with ε equal to the spacing, so neighbors sit at exactly distance ε
	// and rows land exactly on candidate cell edges.
	var lattice []geom.Point
	for x := 0; x < 25; x++ {
		for y := 0; y < 25; y++ {
			lattice = append(lattice, geom.Point{float64(x) * 0.25, float64(y) * 0.25})
		}
	}

	// 1-D: clusters on a line, stride 1.
	line := make([]geom.Point, 512)
	for i := range line {
		line[i] = geom.Point{float64(i/64)*10 + rng.Float64()}
	}

	// 8-D: uniform in the unit cube, stride 8.
	high := make([]geom.Point, 400)
	for i := range high {
		p := make(geom.Point, 8)
		for d := range p {
			p[d] = rng.Float64()
		}
		high[i] = p
	}

	datasets := []struct {
		name   string
		pts    []geom.Point
		params Params
	}{
		{"blobs", blob, Params{Eps: 0.5, MinPts: 5}},
		{"uniform", uniformPoints(rng, 800, 10), Params{Eps: 0.35, MinPts: 4}},
		{"duplicates", dup, Params{Eps: 0.5, MinPts: 4}},
		{"boundary-lattice", lattice, Params{Eps: 0.25, MinPts: 3}},
		{"line-1d", line, Params{Eps: 0.5, MinPts: 3}},
		{"cube-8d", high, Params{Eps: 0.45, MinPts: 2}},
	}
	for _, ds := range datasets {
		st := storeFrom(t, ds.pts)
		for _, kind := range index.Kinds() {
			idx, err := index.BuildStore(kind, st, geom.Euclidean{}, ds.params.Eps)
			if err != nil {
				t.Fatalf("%s/%s: build: %v", ds.name, kind, err)
			}
			seq, err := Run(idx, ds.params, Options{CollectSpecificCores: true})
			if err != nil {
				t.Fatalf("%s/%s: sequential: %v", ds.name, kind, err)
			}
			for _, workers := range shardWorkerCounts() {
				t.Run(fmt.Sprintf("%s/%s/workers=%d", ds.name, kind, workers), func(t *testing.T) {
					par, err := RunParallel(idx, ds.params, Options{
						CollectSpecificCores: true,
						Workers:              workers,
					})
					if err != nil {
						t.Fatal(err)
					}
					if par.Shards < 2 {
						t.Fatalf("Shards = %d, want the spatial shard path (≥ 2)", par.Shards)
					}
					assertParallelMatches(t, idx, ds.params, seq, par)
				})
			}
		}
	}
}

// TestRunParallelShardFallback pins the degenerate geometries that must
// bypass spatial sharding: NaN and ±Inf coordinates, ε covering the whole
// bounding box, all points identical (one cell), and an explicit
// ShardingOff. Each falls back to the chunked path (Shards == 0) and the
// result still matches the sequential Run on the same index.
func TestRunParallelShardFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(41))

	nan := uniformPoints(rng, 200, 10)
	nan[17] = geom.Point{math.NaN(), 3}
	inf := uniformPoints(rng, 200, 10)
	inf[3] = geom.Point{math.Inf(1), 1}
	inf[150] = geom.Point{2, math.Inf(-1)}
	same := make([]geom.Point, 200)
	for i := range same {
		same[i] = geom.Point{1.5, -2.5}
	}

	cases := []struct {
		name   string
		pts    []geom.Point
		params Params
		opts   Options
	}{
		{"nan-coord", nan, Params{Eps: 0.5, MinPts: 4}, Options{}},
		{"inf-coord", inf, Params{Eps: 0.5, MinPts: 4}, Options{}},
		{"eps-covers-bbox", uniformPoints(rng, 300, 1), Params{Eps: 5, MinPts: 4}, Options{}},
		{"all-identical", same, Params{Eps: 0.5, MinPts: 4}, Options{}},
		{"sharding-off", uniformPoints(rng, 800, 10), Params{Eps: 0.35, MinPts: 4}, Options{Sharding: ShardingOff}},
		{"tiny", uniformPoints(rng, 60, 10), Params{Eps: 0.5, MinPts: 3}, Options{}},
	}
	for _, tc := range cases {
		// The non-finite datasets stay on the kd-tree and linear kinds: the
		// indexes are only specified for finite data, but whatever a kind
		// does with NaN it must do identically on both paths, and these two
		// kinds degrade to plain scans.
		kinds := index.Kinds()
		if tc.name == "nan-coord" || tc.name == "inf-coord" {
			kinds = []index.Kind{index.KindLinear, index.KindKDTree}
		}
		for _, kind := range kinds {
			t.Run(fmt.Sprintf("%s/%s", tc.name, kind), func(t *testing.T) {
				st := storeFrom(t, tc.pts)
				idx, err := index.BuildStore(kind, st, geom.Euclidean{}, tc.params.Eps)
				if err != nil {
					t.Fatal(err)
				}
				seq, err := Run(idx, tc.params, Options{CollectSpecificCores: true})
				if err != nil {
					t.Fatal(err)
				}
				opts := tc.opts
				opts.CollectSpecificCores = true
				opts.Workers = 4
				par, err := RunParallel(idx, tc.params, opts)
				if err != nil {
					t.Fatal(err)
				}
				if par.Shards != 0 {
					t.Fatalf("Shards = %d, want chunked fallback (0)", par.Shards)
				}
				assertParallelMatches(t, idx, tc.params, seq, par)
			})
		}
	}
}

// TestRunParallelShardDeterministic checks that the shard path is a pure
// function of the input: every worker count yields bit-identical labels,
// core flags, specific cores and query counts, even though the cell-to-
// worker assignment (and the shard count itself, which scales with the
// worker count) varies run to run.
func TestRunParallelShardDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := uniformPoints(rng, 1000, 10)
	params := Params{Eps: 0.4, MinPts: 4}
	st := storeFrom(t, pts)
	idx, err := index.BuildStore(index.KindGrid, st, geom.Euclidean{}, params.Eps)
	if err != nil {
		t.Fatal(err)
	}
	var want *Result
	for _, workers := range []int{1, 2, 3, 4, 7, 16} {
		got, err := RunParallel(idx, params, Options{CollectSpecificCores: true, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Shards < 2 {
			t.Fatalf("workers=%d: Shards = %d, want the spatial shard path", workers, got.Shards)
		}
		got.Shards = 0 // the shard count scales with workers; everything else may not
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: result differs from workers=1", workers)
		}
	}
}
