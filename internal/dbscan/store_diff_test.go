// Package dbscan_test holds the store-vs-slice differential: it lives in an
// external test package so it can pull in the data generators (package data
// imports dbscan for Params, which would cycle from an internal test).
package dbscan_test

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/dbdc-go/dbdc/internal/data"
	"github.com/dbdc-go/dbdc/internal/dbscan"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/index"
)

// diffPoints builds a modest mixed data set: three blobs, a ring, and
// background noise — enough structure for clusters, border points, and
// noise to all appear.
func diffPoints(t *testing.T) []geom.Point {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	var pts []geom.Point
	pts = append(pts, data.Blob(rng, geom.Point{10, 10}, 1.0, 220)...)
	pts = append(pts, data.Blob(rng, geom.Point{30, 12}, 1.3, 220)...)
	pts = append(pts, data.Blob(rng, geom.Point{20, 32}, 0.8, 220)...)
	pts = append(pts, data.Ring(rng, 20, 32, 6, 0.3, 180)...)
	pts = append(pts, data.Uniform(rng, geom.NewRect(geom.Point{0, 0}, geom.Point{45, 45}), 120)...)
	return pts
}

// clonePoints deep-copies so the slice path runs on genuinely independent
// per-point allocations, not store views.
func clonePoints(pts []geom.Point) []geom.Point {
	out := make([]geom.Point, len(pts))
	for i, p := range pts {
		out[i] = p.Clone()
	}
	return out
}

// TestStorePipelineDifferential is the end-to-end acceptance check of the
// flat-store refactor: for every index kind and for both the sequential and
// the parallel kernel, a store-backed clustering must be indistinguishable
// from the slice-backed clustering — identical labels, identical cluster
// count, identical region-query count, identical specific cores and
// specific ε. Not "equivalent up to renumbering": identical.
func TestStorePipelineDifferential(t *testing.T) {
	pts := diffPoints(t)
	params := dbscan.Params{Eps: 1.1, MinPts: 5}
	st, err := geom.FromPoints(pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range index.Kinds() {
		for _, workers := range []int{1, 4} {
			opts := dbscan.Options{CollectSpecificCores: true, Workers: workers}

			sliceIdx, err := index.Build(kind, clonePoints(pts), geom.Euclidean{}, params.Eps)
			if err != nil {
				t.Fatalf("%s: Build: %v", kind, err)
			}
			want, err := dbscan.Run(sliceIdx, params, opts)
			if err != nil {
				t.Fatalf("%s/workers=%d: slice run: %v", kind, workers, err)
			}

			storeIdx, err := index.BuildStore(kind, st, geom.Euclidean{}, params.Eps)
			if err != nil {
				t.Fatalf("%s: BuildStore: %v", kind, err)
			}
			if got := index.StoreOf(storeIdx); got == nil {
				t.Fatalf("%s: store-built index does not expose its store", kind)
			}
			got, err := dbscan.Run(storeIdx, params, opts)
			if err != nil {
				t.Fatalf("%s/workers=%d: store run: %v", kind, workers, err)
			}

			if !reflect.DeepEqual(got.Labels, want.Labels) {
				t.Errorf("%s/workers=%d: store labels differ from slice labels", kind, workers)
			}
			if got.NumClusters() != want.NumClusters() {
				t.Errorf("%s/workers=%d: %d clusters vs %d", kind, workers, got.NumClusters(), want.NumClusters())
			}
			if got.RangeQueries != want.RangeQueries {
				t.Errorf("%s/workers=%d: %d range queries vs %d", kind, workers, got.RangeQueries, want.RangeQueries)
			}
			if !reflect.DeepEqual(got.Scor, want.Scor) {
				t.Errorf("%s/workers=%d: specific cores differ", kind, workers)
			}
			if !reflect.DeepEqual(got.SpecificEps, want.SpecificEps) {
				t.Errorf("%s/workers=%d: specific ε differ", kind, workers)
			}
		}
	}
}
