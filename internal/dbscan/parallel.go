package dbscan

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/index"
	"github.com/dbdc-go/dbdc/internal/shard"
)

// RunParallel clusters the points held by idx with a partition-and-merge
// DBSCAN. Phase 1 issues the ε-range query for each object (the entirety of
// DBSCAN's cost model) from Options.Workers goroutines, partitioned one of
// two ways:
//
//   - Spatial sharding (the default for store-backed Euclidean indexes):
//     the store is partitioned by internal/shard into grid cells of side
//     ≥ ε plus an ε-halo of borrowed neighbor rows, and a worker pool
//     clusters each cell against a small cache-local grid sub-index built
//     over just the cell's own+halo rows — the partition-with-halo shape of
//     PDBSCAN. The halo makes every sub-index neighborhood equal to the
//     global one, so the recorded adjacency is exactly the chunked path's.
//   - Contiguous index chunks (the fallback for slice-built indexes,
//     non-Euclidean metrics, non-finite coordinates, and geometry where
//     fewer than two ε-cells fit): every worker owns a contiguous slice of
//     the object range and queries the shared index.
//
// Either way the clustering is reconstructed from the recorded core
// adjacency with a union-find over core points. The merge itself runs in
// parallel too — workers replay their own adjacency through a lock-free
// union-find — with only the final numbering pass sequential.
//
// Result guarantees relative to the sequential Run (independent of the
// partitioning strategy):
//
//   - Core flags are identical (|N_Eps(p)| ≥ MinPts is order-free).
//   - The core partition is identical: two core points share a cluster iff
//     they are density-connected, and clusters are numbered by their lowest
//     core-point index — exactly the order in which the sequential scan
//     first reaches each cluster. Labels of core points are therefore
//     byte-identical to Run's.
//   - RangeQueries accounting is exact: exactly one region query per object,
//     plus one per selected specific core point when CollectSpecificCores is
//     set. Without CollectSpecificCores the count is identical to Run's;
//     with it, the totals can differ by the size difference of the two
//     (equally valid) specific core sets.
//   - Border points (non-core members) are assigned to the cluster of their
//     lowest-index core neighbor. Sequential DBSCAN assigns whichever
//     cluster expands into them first; for border points in reach of a
//     single cluster — the overwhelming majority — the two rules coincide.
//     The tie rule is deterministic, so repeated parallel runs agree with
//     each other regardless of worker count. Noise is identical (a non-core
//     point with no core neighbor is noise under both rules).
//   - With CollectSpecificCores, the specific core points are selected by
//     the same greedy coverage rule (Definition 6) but in ascending core
//     index order per cluster rather than expansion order, so the selected
//     set may differ from Run's while remaining a valid complete set;
//     SpecificEps follows Definition 7 exactly.
//
// Determinism under concurrency: the merge-phase union-find attaches the
// larger root under the smaller via compare-and-swap, so the lowest index of
// a component can never acquire a parent regardless of interleaving; the
// per-object lowest-core-neighbor record merges by minimum, which is
// commutative across any shard-to-worker assignment. The components (and
// with them every label) are a pure function of the input, whatever the
// worker count and whichever phase-1 partitioning ran.
//
// Workers ≤ 0 selects GOMAXPROCS. The index must be safe for concurrent
// readers, which every index in this module is after construction.
func RunParallel(idx index.Index, params Params, opts Options) (*Result, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	n := idx.Len()
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("dbscan: RunParallel supports at most %d objects, got %d", math.MaxInt32, n)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	res := &Result{
		Params: params,
		Labels: cluster.NewLabeling(n),
		Core:   make([]bool, n),
	}
	if opts.CollectSpecificCores {
		res.Scor = make(map[cluster.ID][]int)
		res.SpecificEps = make(map[int]float64)
	}
	if n == 0 {
		return res, nil
	}

	// Phase 1 — parallel region queries. Both partitionings fill the same
	// worker-local arenas: the owned objects in query order, of each core
	// object's neighborhood only the forward half (j > i) in a flat arena
	// (the neighbor relation is symmetric, so every core-core edge reappears
	// from its other endpoint and the merge can afford to skip the backward
	// half), and a per-object lowest-index core neighbor for the border
	// rule. Core flags are disjoint writes — each object is owned by exactly
	// one worker (chunked) or one shard (spatial).
	arenas := make([]arena, workers)
	var plan *shard.Plan
	if opts.Sharding == ShardingAuto {
		if st := index.StoreOf(idx); st != nil {
			// Aim for a few shards per worker so the pool load-balances
			// uneven cells, but keep shards large enough (≥ ~64 rows on
			// average) to amortize their sub-index builds.
			target := workers * 4
			if mx := n / 64; target > mx {
				target = mx
			}
			plan = shard.Grid(st, params.Eps, target)
			if plan != nil {
				if err := shardPhase1(st, plan, params, res, arenas); err != nil {
					return nil, err
				}
				res.Shards = len(plan.Regions)
			}
		}
	}
	if plan == nil {
		chunkPhase1(idx, params, res, arenas)
	}

	// Phase 2 — parallel merge. Union-find over core-point adjacency: two
	// core points within Eps of each other are density-connected, and every
	// density-connection between cores decomposes into such hops, so the
	// components of this graph are exactly the core partition of sequential
	// DBSCAN. Every worker replays its own arena (cache-resident from phase
	// 1) against a shared lock-free union-find; core flags are frozen at the
	// phase barrier, so the core[j] filter needs no synchronisation.
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	find := func(x int32) int32 {
		for {
			p := atomic.LoadInt32(&parent[x])
			if p == x {
				return x
			}
			if gp := atomic.LoadInt32(&parent[p]); gp != p {
				// Path halving; best-effort, losing the race is harmless.
				atomic.CompareAndSwapInt32(&parent[x], p, gp)
				x = gp
			} else {
				x = p
			}
		}
	}
	union := func(a, b int32) {
		for {
			ra, rb := find(a), find(b)
			if ra == rb {
				return
			}
			if ra > rb { // the smaller index stays root: deterministic components
				ra, rb = rb, ra
			}
			if atomic.CompareAndSwapInt32(&parent[rb], rb, ra) {
				return
			}
		}
	}
	replay := func(a *arena) {
		for t := 0; t+1 < len(a.offsets); t++ {
			i := a.rowAt(t)
			if !res.Core[i] {
				continue
			}
			for _, j := range a.flat[a.offsets[t]:a.offsets[t+1]] {
				if res.Core[j] {
					union(i, j)
				}
			}
		}
	}
	if workers == 1 {
		replay(&arenas[0])
	} else {
		var wg sync.WaitGroup
		for w := range arenas {
			wg.Add(1)
			go func(a *arena) {
				defer wg.Done()
				replay(a)
			}(&arenas[w])
		}
		wg.Wait()
	}

	// Phase 3 — sequential numbering and labeling. Each worker's minCore
	// holds the lowest-index core neighbor it observed per object; the
	// global minimum across workers is the border tie rule's core neighbor,
	// whichever partitioning ran. Scanning ascending assigns each component
	// its id at the component's lowest core index, which is the order the
	// sequential scan discovers clusters in.
	minCoreNbr := arenas[0].minCore
	for w := 1; w < len(arenas); w++ {
		for i, v := range arenas[w].minCore {
			if v >= 0 && (minCoreNbr[i] == -1 || v < minCoreNbr[i]) {
				minCoreNbr[i] = v
			}
		}
	}
	for w := range arenas {
		res.RangeQueries += arenas[w].queries
	}
	rootID := make(map[int32]cluster.ID)
	var next cluster.ID
	for i := 0; i < n; i++ {
		if !res.Core[i] {
			continue
		}
		r := find(int32(i))
		id, ok := rootID[r]
		if !ok {
			id = next
			next++
			rootID[r] = id
		}
		res.Labels[i] = id
	}
	for i := 0; i < n; i++ {
		if res.Core[i] {
			continue
		}
		if c := minCoreNbr[i]; c >= 0 {
			res.Labels[i] = rootID[find(c)]
		} else {
			res.Labels[i] = cluster.Noise
		}
	}

	// Phase 4 — specific core points (Definition 6) by greedy coverage in
	// ascending core index order, then specific ε-ranges (Definition 7).
	// Clusters condense independently, so the phase parallelises over
	// clusters with results identical to the sequential fold; see
	// condenseSpecificCores.
	if opts.CollectSpecificCores {
		res.condenseSpecificCores(idx, workers)
	}
	return res, nil
}

// arena is one worker's phase-1 record: the objects it queried and the core
// adjacency it observed, replayed against the union-find in phase 2.
type arena struct {
	lo, hi  int     // contiguous owned range when rows is nil (chunked path)
	rows    []int32 // owned objects in query order (shard path)
	offsets []int32 // offsets[t..t+1] frame the forward neighbors of the t-th owned object in flat
	flat    []int32 // forward (j > i) neighbor indexes of core objects
	minCore []int32 // per-object lowest-index core neighbor this worker observed, -1 if none
	queries int
}

// rowAt returns the t-th owned object of the arena.
func (a *arena) rowAt(t int) int32 {
	if a.rows != nil {
		return a.rows[t]
	}
	return int32(a.lo + t)
}

// chunkPhase1 runs phase 1 over contiguous chunks of the object range: each
// worker issues exactly one ε-range query per owned object through
// index.RangeIntoID with a worker-local reused buffer and sets the core flag
// (disjoint writes, no locking). A worker scans its chunk in ascending
// order, so the first core object that reports j as a neighbor is the
// worker's lowest-index core neighbor of j — one write into the worker-local
// minCore array.
func chunkPhase1(idx index.Index, params Params, res *Result, arenas []arena) {
	n := idx.Len()
	workers := len(arenas)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		arenas[w].lo, arenas[w].hi = w*n/workers, (w+1)*n/workers
		wg.Add(1)
		go func(a *arena) {
			defer wg.Done()
			a.offsets = make([]int32, 1, a.hi-a.lo+1)
			a.minCore = make([]int32, n)
			for i := range a.minCore {
				a.minCore[i] = -1
			}
			var buf []int
			for i := a.lo; i < a.hi; i++ {
				buf = index.RangeIntoID(idx, i, params.Eps, buf)
				a.queries++
				if len(buf) >= params.MinPts {
					res.Core[i] = true
					// Grow the arena once per order of magnitude instead of
					// per append: reserve from the running average.
					if free := cap(a.flat) - len(a.flat); free < len(buf) {
						avg := (len(a.flat) + len(buf)) / (i - a.lo + 1)
						want := len(a.flat) + (a.hi-i)*(avg+1)
						if want < 2*cap(a.flat) {
							want = 2 * cap(a.flat)
						}
						grown := make([]int32, len(a.flat), want)
						copy(grown, a.flat)
						a.flat = grown
					}
					for _, v := range buf {
						if v > i {
							a.flat = append(a.flat, int32(v))
						}
						if v != i && a.minCore[v] == -1 {
							a.minCore[v] = int32(i) // ascending scan: first write is the chunk minimum
						}
					}
				}
				a.offsets = append(a.offsets, int32(len(a.flat)))
			}
		}(&arenas[w])
	}
	wg.Wait()
}

// shardPhase1 runs phase 1 over the spatial shards of plan: a worker pool
// pulls cells off a shared cursor, copies each cell's own+halo rows into a
// compact sub-store, builds a grid sub-index over it (cells sized to ε —
// correctness is index-agnostic, and the grid is the cheapest to build),
// and issues the per-object queries against that cache-local sub-index.
// Sub-index hits are translated back to global row ids through the cell's
// row list. The ε-halo makes every sub-index neighborhood equal to the
// global index's neighborhood, so the arenas are query-for-query identical
// to the chunked path's — only grouped by cell instead of index position.
func shardPhase1(st *geom.Store, plan *shard.Plan, params Params, res *Result, arenas []arena) error {
	n := st.Len()
	dim := st.Dim()
	workers := len(arenas)
	var cursor int32
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(a *arena, errp *error) {
			defer wg.Done()
			a.offsets = make([]int32, 1, n/workers+1)
			a.minCore = make([]int32, n)
			for i := range a.minCore {
				a.minCore[i] = -1
			}
			var buf []int
			var subRows []int32 // sub-index id → global row id, reused per cell
			for {
				r := int(atomic.AddInt32(&cursor, 1)) - 1
				if r >= len(plan.Regions) {
					return
				}
				reg := &plan.Regions[r]
				subRows = subRows[:0]
				subRows = append(subRows, reg.Own...)
				subRows = append(subRows, reg.Halo...)
				sub := geom.NewStore(dim, len(subRows))
				for _, g := range subRows {
					sub.Append(st.Point(int(g)))
				}
				subIdx, err := index.BuildStore(index.KindGrid, sub, geom.Euclidean{}, params.Eps)
				if err != nil {
					*errp = err
					return
				}
				for v := range reg.Own {
					g := reg.Own[v]
					buf = index.RangeIntoID(subIdx, v, params.Eps, buf)
					a.queries++
					a.rows = append(a.rows, g)
					if len(buf) >= params.MinPts {
						res.Core[g] = true
						for _, sv := range buf {
							gj := subRows[sv]
							if gj > g {
								a.flat = append(a.flat, gj)
							}
							if gj != g && (a.minCore[gj] == -1 || g < a.minCore[gj]) {
								a.minCore[gj] = g // cells arrive out of order: explicit minimum
							}
						}
					}
					a.offsets = append(a.offsets, int32(len(a.flat)))
				}
			}
		}(&arenas[w], &errs[w])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
