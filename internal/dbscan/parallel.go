package dbscan

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/index"
)

// RunParallel clusters the points held by idx with a partition-and-merge
// DBSCAN: the object range is split into Options.Workers contiguous chunks,
// every worker issues the ε-range query for each of its objects (the
// entirety of DBSCAN's cost model), and the clustering is reconstructed from
// the recorded core adjacency with a union-find over core points. The merge
// itself runs in parallel too — workers replay their own adjacency through a
// lock-free union-find — with only the final numbering pass sequential.
//
// Result guarantees relative to the sequential Run:
//
//   - Core flags are identical (|N_Eps(p)| ≥ MinPts is order-free).
//   - The core partition is identical: two core points share a cluster iff
//     they are density-connected, and clusters are numbered by their lowest
//     core-point index — exactly the order in which the sequential scan
//     first reaches each cluster. Labels of core points are therefore
//     byte-identical to Run's.
//   - RangeQueries accounting is exact: exactly one region query per object,
//     plus one per selected specific core point when CollectSpecificCores is
//     set. Without CollectSpecificCores the count is identical to Run's;
//     with it, the totals can differ by the size difference of the two
//     (equally valid) specific core sets.
//   - Border points (non-core members) are assigned to the cluster of their
//     lowest-index core neighbor. Sequential DBSCAN assigns whichever
//     cluster expands into them first; for border points in reach of a
//     single cluster — the overwhelming majority — the two rules coincide.
//     The tie rule is deterministic, so repeated parallel runs agree with
//     each other regardless of worker count. Noise is identical (a non-core
//     point with no core neighbor is noise under both rules).
//   - With CollectSpecificCores, the specific core points are selected by
//     the same greedy coverage rule (Definition 6) but in ascending core
//     index order per cluster rather than expansion order, so the selected
//     set may differ from Run's while remaining a valid complete set;
//     SpecificEps follows Definition 7 exactly.
//
// Determinism under concurrency: the merge-phase union-find attaches the
// larger root under the smaller via compare-and-swap, so the lowest index of
// a component can never acquire a parent regardless of interleaving; the
// components (and with them every label) are a pure function of the input.
//
// Workers ≤ 0 selects GOMAXPROCS. The index must be safe for concurrent
// readers, which every index in this module is after construction.
func RunParallel(idx index.Index, params Params, opts Options) (*Result, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	n := idx.Len()
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("dbscan: RunParallel supports at most %d objects, got %d", math.MaxInt32, n)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	res := &Result{
		Params: params,
		Labels: cluster.NewLabeling(n),
		Core:   make([]bool, n),
	}
	if opts.CollectSpecificCores {
		res.Scor = make(map[cluster.ID][]int)
		res.SpecificEps = make(map[int]float64)
	}
	if n == 0 {
		return res, nil
	}

	// Phase 1 — parallel region queries. Each worker owns a contiguous chunk
	// of objects, issues exactly one ε-range query per object through
	// index.RangeInto with a worker-local reused buffer, and sets the core
	// flag (disjoint writes, no locking). Of a core object's neighborhood it
	// keeps only the forward half (j > i) in a flat worker-local arena: the
	// neighbor relation is symmetric, so every core-core edge reappears from
	// its other endpoint and the merge can afford to skip the backward half.
	// Border bookkeeping needs no arena at all: a worker scans its chunk in
	// ascending order, so the first core object that reports j as a neighbor
	// is the worker's lowest-index core neighbor of j — one write into a
	// worker-local minCore array, merged across workers afterwards.
	type shard struct {
		lo, hi  int
		offsets []int32 // offsets[i-lo..i-lo+1] frame the forward neighbors of i in flat
		flat    []int32 // forward (j > i) neighbor indexes of core objects
		minCore []int32 // per-object lowest-index core neighbor within this chunk's cores, -1 if none
		queries int
	}
	shards := make([]shard, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		shards[w] = shard{lo: lo, hi: hi}
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			sh.offsets = make([]int32, 1, sh.hi-sh.lo+1)
			sh.minCore = make([]int32, n)
			for i := range sh.minCore {
				sh.minCore[i] = -1
			}
			var buf []int
			for i := sh.lo; i < sh.hi; i++ {
				buf = index.RangeIntoID(idx, i, params.Eps, buf)
				sh.queries++
				if len(buf) >= params.MinPts {
					res.Core[i] = true
					// Grow the arena once per order of magnitude instead of
					// per append: reserve from the running average.
					if free := cap(sh.flat) - len(sh.flat); free < len(buf) {
						avg := (len(sh.flat) + len(buf)) / (i - sh.lo + 1)
						want := len(sh.flat) + (sh.hi-i)*(avg+1)
						if want < 2*cap(sh.flat) {
							want = 2 * cap(sh.flat)
						}
						grown := make([]int32, len(sh.flat), want)
						copy(grown, sh.flat)
						sh.flat = grown
					}
					for _, v := range buf {
						if v > i {
							sh.flat = append(sh.flat, int32(v))
						}
						if v != i && sh.minCore[v] == -1 {
							sh.minCore[v] = int32(i) // ascending scan: first write is the chunk minimum
						}
					}
				}
				sh.offsets = append(sh.offsets, int32(len(sh.flat)))
			}
		}(&shards[w])
	}
	wg.Wait()

	// Phase 2 — parallel merge. Union-find over core-point adjacency: two
	// core points within Eps of each other are density-connected, and every
	// density-connection between cores decomposes into such hops, so the
	// components of this graph are exactly the core partition of sequential
	// DBSCAN. Every worker replays its own arena (cache-resident from phase
	// 1) against a shared lock-free union-find; core flags are frozen at the
	// phase barrier, so the core[j] filter needs no synchronisation.
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	find := func(x int32) int32 {
		for {
			p := atomic.LoadInt32(&parent[x])
			if p == x {
				return x
			}
			if gp := atomic.LoadInt32(&parent[p]); gp != p {
				// Path halving; best-effort, losing the race is harmless.
				atomic.CompareAndSwapInt32(&parent[x], p, gp)
				x = gp
			} else {
				x = p
			}
		}
	}
	union := func(a, b int32) {
		for {
			ra, rb := find(a), find(b)
			if ra == rb {
				return
			}
			if ra > rb { // the smaller index stays root: deterministic components
				ra, rb = rb, ra
			}
			if atomic.CompareAndSwapInt32(&parent[rb], rb, ra) {
				return
			}
		}
	}
	if workers == 1 {
		sh := &shards[0]
		for i := sh.lo; i < sh.hi; i++ {
			if !res.Core[i] {
				continue
			}
			for _, j := range sh.flat[sh.offsets[i-sh.lo]:sh.offsets[i-sh.lo+1]] {
				if res.Core[j] {
					union(int32(i), j)
				}
			}
		}
	} else {
		for w := range shards {
			wg.Add(1)
			go func(sh *shard) {
				defer wg.Done()
				for i := sh.lo; i < sh.hi; i++ {
					if !res.Core[i] {
						continue
					}
					for _, j := range sh.flat[sh.offsets[i-sh.lo]:sh.offsets[i-sh.lo+1]] {
						if res.Core[j] {
							union(int32(i), j)
						}
					}
				}
			}(&shards[w])
		}
		wg.Wait()
	}

	// Phase 3 — sequential numbering and labeling. Chunks partition the
	// object range in ascending order, so the first shard reporting a core
	// neighbor for j holds the globally lowest-index one (the border tie
	// rule). Scanning ascending assigns each component its id at the
	// component's lowest core index, which is the order the sequential scan
	// discovers clusters in.
	minCoreNbr := shards[0].minCore
	for w := 1; w < len(shards); w++ {
		for i, v := range shards[w].minCore {
			if minCoreNbr[i] == -1 {
				minCoreNbr[i] = v
			}
		}
	}
	for w := range shards {
		res.RangeQueries += shards[w].queries
	}
	rootID := make(map[int32]cluster.ID)
	var next cluster.ID
	for i := 0; i < n; i++ {
		if !res.Core[i] {
			continue
		}
		r := find(int32(i))
		id, ok := rootID[r]
		if !ok {
			id = next
			next++
			rootID[r] = id
		}
		res.Labels[i] = id
	}
	for i := 0; i < n; i++ {
		if res.Core[i] {
			continue
		}
		if c := minCoreNbr[i]; c >= 0 {
			res.Labels[i] = rootID[find(c)]
		} else {
			res.Labels[i] = cluster.Noise
		}
	}

	// Phase 4 — specific core points (Definition 6) by greedy coverage in
	// ascending core index order, then specific ε-ranges (Definition 7).
	// Clusters condense independently, so the phase parallelises over
	// clusters with results identical to the sequential fold; see
	// condenseSpecificCores.
	if opts.CollectSpecificCores {
		res.condenseSpecificCores(idx, workers)
	}
	return res, nil
}
