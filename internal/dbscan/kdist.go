package dbscan

import (
	"sort"

	"github.com/dbdc-go/dbdc/internal/index"
)

// KDist computes the sorted k-dist graph of Ester et al. (1996), the
// standard heuristic for choosing Eps: for every object the distance to its
// k-th nearest neighbor (excluding the object itself) is computed and the
// distances are returned in descending order. The "valley" of this curve is
// a good Eps for MinPts = k+1.
func KDist(idx index.KNNIndex, k int) []float64 {
	n := idx.Len()
	metric := idx.Metric()
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		p := idx.Point(i)
		// k+1 because the query point itself is its own nearest neighbor.
		nn := idx.KNN(p, k+1)
		if len(nn) <= k {
			continue // fewer than k other points exist
		}
		out = append(out, metric.Distance(p, idx.Point(nn[k])))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// SuggestEps returns a heuristic Eps for the given MinPts: the k-dist value
// at the given noise percentile (e.g. 0.02 assumes ~2% noise). This mirrors
// how the DBSCAN authors recommend reading the k-dist plot.
func SuggestEps(idx index.KNNIndex, minPts int, noiseFraction float64) float64 {
	if noiseFraction < 0 {
		noiseFraction = 0
	}
	if noiseFraction > 1 {
		noiseFraction = 1
	}
	dists := KDist(idx, minPts-1)
	if len(dists) == 0 {
		return 0
	}
	pos := int(noiseFraction * float64(len(dists)))
	if pos >= len(dists) {
		pos = len(dists) - 1
	}
	return dists[pos]
}
