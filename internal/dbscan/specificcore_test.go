package dbscan

import (
	"math/rand"
	"testing"

	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/index"
)

// checkDefinition6 verifies all three conditions of Definition 6 for every
// cluster: Scor_C ⊆ Cor_C, pairwise non-containment in Eps-neighborhoods,
// and complete coverage of Cor_C.
func checkDefinition6(t *testing.T, pts []geom.Point, res *Result) {
	t.Helper()
	e := geom.Euclidean{}
	eps := res.Params.Eps
	for id, scor := range res.Scor {
		for _, s := range scor {
			if !res.Core[s] {
				t.Fatalf("cluster %d: specific core point %d is not a core point", id, s)
			}
			if res.Labels[s] != id {
				t.Fatalf("cluster %d: specific core point %d belongs to cluster %d", id, s, res.Labels[s])
			}
		}
		// Condition 2: no specific core point inside another's neighborhood.
		for i, si := range scor {
			for _, sj := range scor[i+1:] {
				if e.Distance(pts[si], pts[sj]) <= eps {
					t.Fatalf("cluster %d: specific core points %d and %d within Eps", id, si, sj)
				}
			}
		}
		// Condition 3: every core point of the cluster is covered.
		for c := range pts {
			if !res.Core[c] || res.Labels[c] != id {
				continue
			}
			covered := false
			for _, s := range scor {
				if e.Distance(pts[c], pts[s]) <= eps {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("cluster %d: core point %d not covered by any specific core point", id, c)
			}
		}
	}
}

// checkDefinition7 recomputes every specific ε-range from scratch and
// compares with the on-the-fly values.
func checkDefinition7(t *testing.T, pts []geom.Point, res *Result) {
	t.Helper()
	e := geom.Euclidean{}
	eps := res.Params.Eps
	for _, scor := range res.Scor {
		for _, s := range scor {
			var maxDist float64
			for c := range pts {
				if c == s || !res.Core[c] {
					continue
				}
				if d := e.Distance(pts[s], pts[c]); d <= eps && d > maxDist {
					maxDist = d
				}
			}
			want := eps + maxDist
			if got := res.SpecificEps[s]; got != want {
				t.Fatalf("specific eps of %d: got %v, want %v", s, got, want)
			}
		}
	}
}

func TestSpecificCoreDefinitions(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 8; trial++ {
		n := 50 + rng.Intn(250)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{rng.Float64() * 8, rng.Float64() * 8}
		}
		eps := 0.4 + rng.Float64()*0.6
		res, err := Run(linearOf(pts), Params{Eps: eps, MinPts: 3 + rng.Intn(3)},
			Options{CollectSpecificCores: true})
		if err != nil {
			t.Fatal(err)
		}
		checkDefinition6(t, pts, res)
		checkDefinition7(t, pts, res)
	}
}

func TestSpecificCoreCompression(t *testing.T) {
	// A dense cluster must be described by far fewer specific core points
	// than it has core points — that compression is the point of the local
	// model.
	rng := rand.New(rand.NewSource(6))
	pts := make([]geom.Point, 500)
	for i := range pts {
		pts[i] = geom.Point{rng.NormFloat64(), rng.NormFloat64()}
	}
	res, err := Run(linearOf(pts), Params{Eps: 0.5, MinPts: 5},
		Options{CollectSpecificCores: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() < 1 {
		t.Fatal("expected at least one cluster")
	}
	totalCore := 0
	for _, c := range res.Core {
		if c {
			totalCore++
		}
	}
	totalScor := 0
	for _, s := range res.Scor {
		totalScor += len(s)
	}
	if totalScor*4 > totalCore {
		t.Fatalf("poor compression: %d specific of %d core points", totalScor, totalCore)
	}
}

func TestSpecificEpsAtLeastEps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := make([]geom.Point, 300)
	for i := range pts {
		pts[i] = geom.Point{rng.Float64() * 6, rng.Float64() * 6}
	}
	params := Params{Eps: 0.7, MinPts: 4}
	res, err := Run(linearOf(pts), params, Options{CollectSpecificCores: true})
	if err != nil {
		t.Fatal(err)
	}
	for s, e := range res.SpecificEps {
		if e < params.Eps {
			t.Fatalf("specific eps of %d is %v < Eps %v", s, e, params.Eps)
		}
		if e > 2*params.Eps {
			t.Fatalf("specific eps of %d is %v > 2*Eps %v (max dist in Def. 7 is bounded by Eps)",
				s, e, 2*params.Eps)
		}
	}
}

// Property: every cluster member (core and border) lies inside the specific
// ε-range of at least one of its cluster's representatives. This is the
// coverage invariant DESIGN.md derives via the triangle inequality; the
// relabeling step of DBDC depends on it.
func TestRepresentativeCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	e := geom.Euclidean{}
	for trial := 0; trial < 6; trial++ {
		pts := make([]geom.Point, 200+rng.Intn(200))
		for i := range pts {
			pts[i] = geom.Point{rng.Float64() * 7, rng.Float64() * 7}
		}
		res, err := Run(linearOf(pts), Params{Eps: 0.6, MinPts: 4},
			Options{CollectSpecificCores: true})
		if err != nil {
			t.Fatal(err)
		}
		for i := range pts {
			id := res.Labels[i]
			if id < 0 {
				continue
			}
			covered := false
			for _, s := range res.Scor[id] {
				if e.Distance(pts[i], pts[s]) <= res.SpecificEps[s] {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("cluster member %d outside every representative's ε-range", i)
			}
		}
	}
}

func TestScorDisabledByDefault(t *testing.T) {
	pts := []geom.Point{{0, 0}, {0.1, 0}, {0.2, 0}}
	res, err := Run(linearOf(pts), Params{Eps: 0.5, MinPts: 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scor != nil || res.SpecificEps != nil {
		t.Fatal("Scor collected without opt-in")
	}
}

func TestKDistAndSuggestEps(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := make([]geom.Point, 200)
	for i := range pts {
		pts[i] = geom.Point{rng.NormFloat64(), rng.NormFloat64()}
	}
	kd, err := index.NewKDTree(pts, geom.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	dists := KDist(kd, 3)
	if len(dists) != 200 {
		t.Fatalf("KDist returned %d values", len(dists))
	}
	for i := 1; i < len(dists); i++ {
		if dists[i] > dists[i-1] {
			t.Fatal("KDist not descending")
		}
	}
	eps := SuggestEps(kd, 4, 0.02)
	if eps <= 0 {
		t.Fatalf("SuggestEps = %v", eps)
	}
	// A DBSCAN run with the suggested eps should find one dominant cluster.
	res, err := Run(index.NewLinear(pts, geom.Euclidean{}), Params{Eps: eps, MinPts: 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() < 1 {
		t.Fatal("SuggestEps produced no clusters")
	}
}

func TestKDistTinyInput(t *testing.T) {
	kd, _ := index.NewKDTree([]geom.Point{{0, 0}}, nil)
	if got := KDist(kd, 3); len(got) != 0 {
		t.Fatalf("KDist on single point = %v", got)
	}
	if got := SuggestEps(kd, 4, 0.02); got != 0 {
		t.Fatalf("SuggestEps on single point = %v", got)
	}
}

func BenchmarkDBSCAN(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, 5000)
	for i := range pts {
		pts[i] = geom.Point{rng.Float64() * 10, rng.Float64() * 10}
	}
	for _, kind := range index.Kinds() {
		idx, err := index.Build(kind, pts, geom.Euclidean{}, 0.2)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(string(kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run(idx, Params{Eps: 0.2, MinPts: 5}, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
