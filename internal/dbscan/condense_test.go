package dbscan

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/index"
)

// TestCondenseParallelDifferential proves the per-cluster parallel
// condensation is byte-identical to the sequential fold: same specific
// core sets in the same selection order, same specific ε-ranges, same
// region-query accounting — across index kinds, data shapes and worker
// counts (run under -race in CI, this doubles as the phase's race guard).
func TestCondenseParallelDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	blob, _ := twoBlobs(rng, 150)
	datasets := []struct {
		name   string
		pts    []geom.Point
		params Params
	}{
		{"blobs", blob, Params{Eps: 0.5, MinPts: 5}},
		{"uniform", uniformPoints(rng, 600, 10), Params{Eps: 0.35, MinPts: 4}},
		{"manyclusters", uniformPoints(rng, 500, 60), Params{Eps: 1.4, MinPts: 3}},
		{"allnoise", uniformPoints(rng, 100, 1000), Params{Eps: 1, MinPts: 4}},
	}
	for _, ds := range datasets {
		for _, kind := range index.Kinds() {
			idx, err := index.Build(kind, ds.pts, geom.Euclidean{}, ds.params.Eps)
			if err != nil {
				t.Fatalf("%s/%s: build: %v", ds.name, kind, err)
			}
			// workers=1 inside RunParallel takes the sequential condensation
			// path — the reference the parallel fold must reproduce exactly.
			ref, err := RunParallel(idx, ds.params, Options{CollectSpecificCores: true, Workers: 1})
			if err != nil {
				t.Fatalf("%s/%s: reference: %v", ds.name, kind, err)
			}
			for _, workers := range []int{2, 3, 8} {
				t.Run(fmt.Sprintf("%s/%s/workers=%d", ds.name, kind, workers), func(t *testing.T) {
					par, err := RunParallel(idx, ds.params, Options{CollectSpecificCores: true, Workers: workers})
					if err != nil {
						t.Fatal(err)
					}
					if len(par.Scor) != len(ref.Scor) {
						t.Fatalf("parallel condensation found %d clusters with specific cores, reference %d",
							len(par.Scor), len(ref.Scor))
					}
					for id, want := range ref.Scor {
						got, ok := par.Scor[id]
						if !ok {
							t.Fatalf("cluster %v missing from parallel Scor", id)
						}
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("cluster %v: specific cores %v != reference %v (order included)", id, got, want)
						}
					}
					if !reflect.DeepEqual(par.SpecificEps, ref.SpecificEps) {
						t.Fatalf("specific ε-ranges diverge:\n got %v\nwant %v", par.SpecificEps, ref.SpecificEps)
					}
					if par.RangeQueries != ref.RangeQueries {
						t.Fatalf("range-query accounting %d != reference %d", par.RangeQueries, ref.RangeQueries)
					}
					// And the phase input itself was identical (labels/cores
					// are phase 1–3 outputs, guarded elsewhere, but a diverged
					// input would make the comparison above meaningless).
					if !reflect.DeepEqual(par.Labels, ref.Labels) {
						t.Fatal("labelings diverge between runs")
					}
				})
			}
		}
	}
}

// TestCondenseSequentialUnchanged guards the refactor seam: the sequential
// phase-4 path (workers=1) must still agree with the classic Run, whose
// expansion-order greedy produces an equally valid — and for Run's
// processing order, identical — specific core selection only when the
// processing orders coincide; here we assert the weaker, stable contract
// that every cluster has at least one specific core and every specific ε
// is ≥ Eps (Definition 7 lower bound).
func TestCondenseSequentialUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := uniformPoints(rng, 400, 10)
	params := Params{Eps: 0.4, MinPts: 4}
	idx, err := index.Build(index.KindKDTree, pts, geom.Euclidean{}, params.Eps)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunParallel(idx, params, Options{CollectSpecificCores: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() == 0 {
		t.Skip("degenerate dataset: no clusters")
	}
	if len(res.Scor) != res.NumClusters() {
		t.Fatalf("%d clusters but %d entries in Scor", res.NumClusters(), len(res.Scor))
	}
	for id, scor := range res.Scor {
		if len(scor) == 0 {
			t.Fatalf("cluster %v has no specific core points", id)
		}
		for _, s := range scor {
			eps, ok := res.SpecificEps[s]
			if !ok {
				t.Fatalf("specific core %d has no ε-range", s)
			}
			if eps < params.Eps {
				t.Fatalf("specific core %d: ε_s = %g < Eps = %g violates Definition 7", s, eps, params.Eps)
			}
		}
	}
}
