package dbscan

import (
	"sort"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/geom"
)

// This file implements the representative budget of Scalable Density-Based
// Distributed Clustering (Januzaj, Kriegel, Pfeifle — PKDD 2004): a site
// with a constrained uplink ships at most B specific core points per local
// cluster, chosen so that the fraction of cluster members still covered by
// the transmitted representatives is maximized. Coverage uses the same rule
// the server-side relabeling applies — a representative s covers an object
// o iff dist(o, s) ≤ ε_s, the specific ε-range of s — so the objective
// optimizes exactly the quantity that decides which objects keep a global
// label after the round.

// BudgetStats is the accounting of one BudgetScor application over a whole
// clustering: how many specific cores the unbudgeted run selected, how many
// survived the budget, and what fraction of the clustered objects the
// survivors still cover.
type BudgetStats struct {
	// Budget is the per-cluster cap that was applied (0 = unbudgeted).
	Budget int
	// Candidates is the number of specific core points before budgeting,
	// Selected after; Dropped() is their difference.
	Candidates int
	Selected   int
	// Members is the number of clustered (non-noise) objects considered,
	// Covered how many of them lie within the specific ε-range of at least
	// one selected representative.
	Members int
	Covered int
}

// Dropped returns the number of specific cores the budget removed.
func (s BudgetStats) Dropped() int { return s.Candidates - s.Selected }

// CoverageFraction returns Covered/Members, 1 when no members exist (an
// empty clustering loses nothing under any budget).
func (s BudgetStats) CoverageFraction() float64 {
	if s.Members == 0 {
		return 1
	}
	return float64(s.Covered) / float64(s.Members)
}

// BudgetScor selects at most budget specific core points per cluster from
// res.Scor, greedily maximizing the number of cluster members covered
// (dist(member, s) ≤ ε_s). It returns a fresh Scor map — res itself is
// never mutated — plus the coverage accounting.
//
// Determinism: candidates are considered in ascending object (row) id, and
// every greedy round picks the candidate with the highest marginal
// coverage, exact ties breaking toward the lowest row id. The selected
// sequence is therefore invariant under any permutation of the stored
// candidate order — two runs that found the same specific core sets budget
// to identical models regardless of map iteration or upstream processing
// order. Selection stops early when no remaining candidate covers a new
// member: coverage is maximal at that point and every further
// representative would only cost uplink bytes.
//
// Identity: budget ≤ 0 and budget ≥ |Scor_C| (per cluster) return the
// original candidate slices unchanged — same objects, same order — so an
// unbudgeted (or generously budgeted) site stays byte-identical to the
// historical local model on the wire.
//
// pts are the clustered objects, index-aligned with res.Labels; metric is
// the metric the clustering ran under (the squared fast path is used when
// available, exact for non-negative values).
func BudgetScor(pts []geom.Point, res *Result, metric geom.Metric, budget int) (map[cluster.ID][]int, BudgetStats) {
	stats := BudgetStats{Budget: budget}
	if budget < 0 {
		budget = 0
		stats.Budget = 0
	}
	out := make(map[cluster.ID][]int, len(res.Scor))
	sq, hasSq := geom.AsSquared(metric)
	for _, id := range res.Labels.ClusterIDs() {
		scor := res.Scor[id]
		stats.Candidates += len(scor)
		members := res.Labels.Members(id)
		stats.Members += len(members)

		keepAll := budget == 0 || budget >= len(scor)
		var selected []int
		if keepAll {
			// Identity path: the original slice, original order. The stats
			// still need the coverage of the full candidate set.
			selected = scor
		} else {
			selected = greedyCover(pts, res, sq, hasSq, metric, scor, members, budget)
		}
		out[id] = selected
		stats.Selected += len(selected)
		stats.Covered += countCovered(pts, res, sq, hasSq, metric, selected, members)
	}
	return out, stats
}

// covers reports whether specific core s covers object m under the
// relabeling rule: dist(m, s) ≤ ε_s. Squared-space comparison when the
// metric supports it (exact for non-negative values).
func covers(pts []geom.Point, res *Result, sq geom.SquaredMetric, hasSq bool, metric geom.Metric, s, m int) bool {
	eps := res.SpecificEps[s]
	if hasSq {
		return sq.DistanceSq(pts[m], pts[s]) <= eps*eps
	}
	return metric.Distance(pts[m], pts[s]) <= eps
}

// countCovered counts the members covered by at least one selected core.
func countCovered(pts []geom.Point, res *Result, sq geom.SquaredMetric, hasSq bool, metric geom.Metric, selected, members []int) int {
	n := 0
	for _, m := range members {
		for _, s := range selected {
			if covers(pts, res, sq, hasSq, metric, s, m) {
				n++
				break
			}
		}
	}
	return n
}

// greedyCover runs the budgeted max-coverage selection for one cluster. The
// returned sequence is the greedy pick order: highest marginal coverage
// first, row id breaking exact ties, stopping at the budget or when no
// candidate adds coverage.
func greedyCover(pts []geom.Point, res *Result, sq geom.SquaredMetric, hasSq bool, metric geom.Metric, scor, members []int, budget int) []int {
	// Candidates in ascending row id: the scan below takes the first
	// maximum, which then is the lowest row id among ties regardless of the
	// order the clustering stored them in.
	cands := append([]int(nil), scor...)
	sort.Ints(cands)

	// Precompute each candidate's coverage over the member positions; the
	// greedy rounds then only count bits instead of recomputing distances.
	coverage := make([][]int32, len(cands))
	for ci, s := range cands {
		var cov []int32
		for mi, m := range members {
			if covers(pts, res, sq, hasSq, metric, s, m) {
				cov = append(cov, int32(mi))
			}
		}
		coverage[ci] = cov
	}

	covered := make([]bool, len(members))
	used := make([]bool, len(cands))
	selected := make([]int, 0, budget)
	for len(selected) < budget {
		best, bestGain := -1, 0
		for ci := range cands {
			if used[ci] {
				continue
			}
			gain := 0
			for _, mi := range coverage[ci] {
				if !covered[mi] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = ci, gain
			}
		}
		if best < 0 {
			// No remaining candidate covers a new member: coverage is
			// maximal, spending more budget cannot improve it.
			break
		}
		used[best] = true
		for _, mi := range coverage[best] {
			covered[mi] = true
		}
		selected = append(selected, cands[best])
	}
	return selected
}
