package dbscan

import (
	"math/rand"
	"testing"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/index"
)

func linearOf(pts []geom.Point) index.Index {
	return index.NewLinear(pts, geom.Euclidean{})
}

// twoBlobs returns two well-separated Gaussian blobs plus far-away noise.
func twoBlobs(rng *rand.Rand, perBlob int) ([]geom.Point, int) {
	var pts []geom.Point
	for i := 0; i < perBlob; i++ {
		pts = append(pts, geom.Point{rng.NormFloat64() * 0.3, rng.NormFloat64() * 0.3})
	}
	for i := 0; i < perBlob; i++ {
		pts = append(pts, geom.Point{10 + rng.NormFloat64()*0.3, rng.NormFloat64() * 0.3})
	}
	noise := []geom.Point{{100, 100}, {-100, 50}, {50, -100}}
	pts = append(pts, noise...)
	return pts, len(noise)
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{Eps: 0, MinPts: 3}).Validate(); err == nil {
		t.Error("Eps 0 accepted")
	}
	if err := (Params{Eps: 1, MinPts: 0}).Validate(); err == nil {
		t.Error("MinPts 0 accepted")
	}
	if err := (Params{Eps: 1, MinPts: 3}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	if _, err := Run(linearOf(nil), Params{Eps: -1, MinPts: 2}, Options{}); err == nil {
		t.Error("Run accepted invalid params")
	}
}

func TestTwoClustersAndNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts, numNoise := twoBlobs(rng, 100)
	res, err := Run(linearOf(pts), Params{Eps: 0.5, MinPts: 5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.NumClusters(); got != 2 {
		t.Fatalf("NumClusters = %d, want 2", got)
	}
	if got := res.Labels.NumNoise(); got != numNoise {
		t.Fatalf("NumNoise = %d, want %d", got, numNoise)
	}
	// The two blobs must be in different clusters.
	if res.Labels[0] == res.Labels[100] {
		t.Fatal("blobs merged")
	}
	// All members of blob 1 share a label.
	for i := 1; i < 100; i++ {
		if res.Labels[i] != res.Labels[0] {
			t.Fatalf("blob 1 split at %d", i)
		}
	}
	if err := res.Labels.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyInput(t *testing.T) {
	res, err := Run(linearOf(nil), Params{Eps: 1, MinPts: 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() != 0 || len(res.Labels) != 0 {
		t.Fatal("empty input should produce empty result")
	}
}

func TestAllNoise(t *testing.T) {
	pts := []geom.Point{{0, 0}, {10, 10}, {20, 20}}
	res, err := Run(linearOf(pts), Params{Eps: 1, MinPts: 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() != 0 {
		t.Fatalf("NumClusters = %d, want 0", res.NumClusters())
	}
	if res.Labels.NumNoise() != 3 {
		t.Fatalf("NumNoise = %d, want 3", res.Labels.NumNoise())
	}
}

func TestSingleCluster(t *testing.T) {
	var pts []geom.Point
	for i := 0; i < 10; i++ {
		pts = append(pts, geom.Point{float64(i) * 0.1, 0})
	}
	res, err := Run(linearOf(pts), Params{Eps: 0.15, MinPts: 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() != 1 {
		t.Fatalf("NumClusters = %d, want 1", res.NumClusters())
	}
	if res.Labels.NumNoise() != 0 {
		t.Fatal("chain should have no noise")
	}
}

func TestMinPtsOneEveryPointIsACluster(t *testing.T) {
	pts := []geom.Point{{0, 0}, {10, 10}}
	res, err := Run(linearOf(pts), Params{Eps: 1, MinPts: 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() != 2 || res.Labels.NumNoise() != 0 {
		t.Fatalf("MinPts=1: clusters=%d noise=%d", res.NumClusters(), res.Labels.NumNoise())
	}
}

func TestBorderObject(t *testing.T) {
	// Three dense points and one reachable border point.
	pts := []geom.Point{{0, 0}, {0.1, 0}, {0, 0.1}, {0.9, 0}}
	res, err := Run(linearOf(pts), Params{Eps: 1, MinPts: 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Point 0 sees all four points: core. Point 3 sees only 0 and itself
	// within eps=1? dist(3,1)=0.8, dist(3,2)≈0.9055 — it sees everything.
	// Use a tighter check: every labelled non-core point must have a core
	// point in its neighborhood.
	for i := range pts {
		if res.Labels[i] >= 0 && !res.Core[i] {
			found := false
			for j := range pts {
				if res.Core[j] && (geom.Euclidean{}).Distance(pts[i], pts[j]) <= 1 {
					found = true
				}
			}
			if !found {
				t.Fatalf("border object %d has no core in reach", i)
			}
			if !res.IsBorder(i) {
				t.Fatalf("IsBorder(%d) = false for border object", i)
			}
		}
	}
}

// checkDBSCANDefinition verifies the defining properties of a DBSCAN
// clustering (Definitions 1-5): every cluster member is density-reachable
// from a core point of its cluster, core points within Eps of each other
// share a cluster (maximality), border points touch a core of their cluster,
// and noise points have no core point within Eps.
func checkDBSCANDefinition(t *testing.T, pts []geom.Point, res *Result) {
	t.Helper()
	e := geom.Euclidean{}
	eps, minPts := res.Params.Eps, res.Params.MinPts
	for i := range pts {
		// Core flags are consistent with neighborhood cardinality.
		count := 0
		for j := range pts {
			if e.Distance(pts[i], pts[j]) <= eps {
				count++
			}
		}
		if res.Core[i] != (count >= minPts) {
			t.Fatalf("core flag of %d wrong: count=%d minPts=%d", i, count, minPts)
		}
	}
	for i := range pts {
		for j := range pts {
			if i == j || e.Distance(pts[i], pts[j]) > eps {
				continue
			}
			// Maximality: two core points within Eps are density-connected,
			// hence share a cluster.
			if res.Core[i] && res.Core[j] && res.Labels[i] != res.Labels[j] {
				t.Fatalf("core points %d and %d within Eps but in different clusters", i, j)
			}
			// Anything within Eps of a core point must not be noise.
			if res.Core[i] && res.Labels[j] == cluster.Noise {
				t.Fatalf("object %d is within Eps of core %d but labelled noise", j, i)
			}
		}
	}
	for i := range pts {
		if res.Labels[i] >= 0 && !res.Core[i] {
			// Border: some core of the same cluster reaches it.
			ok := false
			for j := range pts {
				if res.Core[j] && res.Labels[j] == res.Labels[i] &&
					e.Distance(pts[i], pts[j]) <= eps {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("border object %d unreachable from its cluster", i)
			}
		}
	}
}

// Property: the definitional invariants hold on random data across
// parameter settings and index kinds.
func TestDefinitionInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		n := 30 + rng.Intn(200)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{rng.Float64() * 10, rng.Float64() * 10}
		}
		eps := 0.3 + rng.Float64()
		minPts := 2 + rng.Intn(5)
		for _, kind := range index.Kinds() {
			idx, err := index.Build(kind, pts, geom.Euclidean{}, eps)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(idx, Params{Eps: eps, MinPts: minPts}, Options{})
			if err != nil {
				t.Fatal(err)
			}
			checkDBSCANDefinition(t, pts, res)
		}
	}
}

// Property: the produced partition is identical (up to cluster renaming) for
// every index kind — DBSCAN's clusters are determined by the data, the
// parameters and (only for border-point assignment) the processing order,
// which Run fixes by object index.
func TestIndexKindsAgreeOnCorePartition(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := make([]geom.Point, 400)
	for i := range pts {
		pts[i] = geom.Point{rng.Float64() * 5, rng.Float64() * 5}
	}
	params := Params{Eps: 0.4, MinPts: 4}
	var results []*Result
	for _, kind := range index.Kinds() {
		idx, err := index.Build(kind, pts, geom.Euclidean{}, params.Eps)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(idx, params, Options{})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	base := results[0]
	for k, res := range results[1:] {
		// Core flags must agree exactly.
		for i := range pts {
			if res.Core[i] != base.Core[i] {
				t.Fatalf("kind %v: core flag of %d differs", index.Kinds()[k+1], i)
			}
		}
		// The partition restricted to core points must agree.
		coreBase := cluster.Labeling{}
		coreRes := cluster.Labeling{}
		for i := range pts {
			if base.Core[i] {
				coreBase = append(coreBase, base.Labels[i])
				coreRes = append(coreRes, res.Labels[i])
			}
		}
		if !coreBase.EquivalentTo(coreRes) {
			t.Fatalf("kind %v: core partition differs", index.Kinds()[k+1])
		}
	}
}

func TestRangeQueriesCounted(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts, _ := twoBlobs(rng, 50)
	res, err := Run(linearOf(pts), Params{Eps: 0.5, MinPts: 5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Every object triggers at least one region query over the course of the
	// run (the paper's complexity analysis counts exactly n queries).
	if res.RangeQueries < len(pts) {
		t.Fatalf("RangeQueries = %d, want >= %d", res.RangeQueries, len(pts))
	}
}

// DBSCAN "can be used for all kinds of metric data spaces and is not
// confined to vector spaces" (paper §4): running over an M-tree with the
// Manhattan metric must reproduce the linear-scan result under the same
// metric.
func TestMetricSpaceDBSCAN(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	pts := make([]geom.Point, 300)
	for i := range pts {
		pts[i] = geom.Point{rng.Float64() * 8, rng.Float64() * 8}
	}
	params := Params{Eps: 0.7, MinPts: 4}
	linear, err := Run(index.NewLinear(pts, geom.Manhattan{}), params, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mt, err := index.Build(index.KindMTree, pts, geom.Manhattan{}, params.Eps)
	if err != nil {
		t.Fatal(err)
	}
	viaTree, err := Run(mt, params, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if linear.Core[i] != viaTree.Core[i] {
			t.Fatalf("core flags differ at %d", i)
		}
	}
	if !linear.Labels.EquivalentTo(viaTree.Labels) {
		t.Fatal("metric-space clustering differs between M-tree and linear scan")
	}
	// And the Manhattan clustering genuinely differs from Euclidean on the
	// same parameters (diamond vs circular neighborhoods).
	euclid, err := Run(index.NewLinear(pts, geom.Euclidean{}), params, Options{})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range pts {
		if euclid.Core[i] != linear.Core[i] {
			same = false
			break
		}
	}
	if same {
		t.Log("warning: Manhattan and Euclidean core sets coincide on this data")
	}
}
