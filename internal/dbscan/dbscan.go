// Package dbscan implements the density-based clustering algorithm DBSCAN
// (Ester, Kriegel, Sander, Xu — KDD 1996) over any neighborhood index, plus
// the enhancement Section 4 of the DBDC paper describes: the complete set of
// specific core points (Definition 6) and their specific ε-ranges
// (Definition 7) are extracted during the clustering run, so a local site
// can derive its local model without a second pass over the data.
package dbscan

import (
	"fmt"
	"math"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/index"
)

// Params are the two DBSCAN parameters: the neighborhood radius Eps and the
// density threshold MinPts (the minimum cardinality of N_Eps(p), including p
// itself, for p to be a core object).
type Params struct {
	Eps    float64
	MinPts int
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Eps <= 0 {
		return fmt.Errorf("dbscan: Eps must be positive, got %v", p.Eps)
	}
	if p.MinPts < 1 {
		return fmt.Errorf("dbscan: MinPts must be at least 1, got %d", p.MinPts)
	}
	return nil
}

// Options tune a DBSCAN run beyond the algorithmic parameters.
type Options struct {
	// CollectSpecificCores enables the DBDC enhancement: specific core
	// points are selected greedily in processing order during the run and
	// their ε-ranges computed afterwards.
	CollectSpecificCores bool
	// Workers selects intra-site parallelism: with Workers > 1 Run delegates
	// to RunParallel, which issues the per-object region queries from that
	// many goroutines and merges the partial results with a union-find over
	// core-point adjacency. 0 or 1 keeps the classic sequential expansion.
	// The core partition and cluster numbering are identical to the
	// sequential run; see RunParallel for the border-point tie rule.
	Workers int
}

// Result holds the outcome of a DBSCAN run.
type Result struct {
	Params Params
	// Labels assigns each object its cluster id or noise.
	Labels cluster.Labeling
	// Core marks the core objects (|N_Eps(p)| >= MinPts).
	Core []bool
	// Scor holds, per cluster, the complete set of specific core points in
	// selection order (object indexes). Populated only when
	// Options.CollectSpecificCores was set.
	Scor map[cluster.ID][]int
	// SpecificEps maps each specific core point (by object index) to its
	// specific ε-range ε_s (Definition 7). Populated with Scor.
	SpecificEps map[int]float64
	// RangeQueries counts the region queries issued — the dominant cost of
	// DBSCAN and the quantity its complexity analysis is stated in.
	RangeQueries int
}

// NumClusters returns the number of clusters found.
func (r *Result) NumClusters() int { return r.Labels.NumClusters() }

// IsBorder reports whether object i is a border object: assigned to a
// cluster but not core.
func (r *Result) IsBorder(i int) bool { return r.Labels[i] >= 0 && !r.Core[i] }

// Run clusters the points held by idx. The index supplies both the data and
// the metric, exactly like the R*-tree underneath the original DBSCAN.
// With Options.Workers > 1 the run is delegated to RunParallel.
func Run(idx index.Index, params Params, opts Options) (*Result, error) {
	if opts.Workers > 1 {
		return RunParallel(idx, params, opts)
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	n := idx.Len()
	res := &Result{
		Params: params,
		Labels: cluster.NewLabeling(n),
		Core:   make([]bool, n),
	}
	if opts.CollectSpecificCores {
		res.Scor = make(map[cluster.ID][]int)
		res.SpecificEps = make(map[int]float64)
	}
	metric := idx.Metric()
	// st is the flat backing store when the index is store-backed under the
	// Euclidean metric; the specific-core coverage and ε-range folds then run
	// on the strided kernels by object id.
	st := index.StoreOf(idx)
	var clusterID cluster.ID
	// seeds and nbuf are reused across queries to avoid per-object
	// allocations; every query result is fully consumed before the next
	// query overwrites the buffer. Queries go by object id (RangeIntoID), so
	// store-backed indexes never materialise a query point.
	var seeds, nbuf []int
	for i := 0; i < n; i++ {
		if res.Labels[i] != cluster.Unclassified {
			continue
		}
		neighbors := index.RangeIntoID(idx, i, params.Eps, nbuf)
		nbuf = neighbors
		res.RangeQueries++
		if len(neighbors) < params.MinPts {
			res.Labels[i] = cluster.Noise
			continue
		}
		// i is a core object: it starts a new cluster and, being the first
		// core point processed for this cluster, is always a specific core
		// point.
		res.Core[i] = true
		res.Labels[i] = clusterID
		if opts.CollectSpecificCores {
			res.Scor[clusterID] = append(res.Scor[clusterID], i)
		}
		seeds = seeds[:0]
		for _, q := range neighbors {
			if q == i {
				continue
			}
			switch res.Labels[q] {
			case cluster.Unclassified:
				res.Labels[q] = clusterID
				seeds = append(seeds, q)
			case cluster.Noise:
				// Former noise in reach of a core object becomes a border
				// object of this cluster.
				res.Labels[q] = clusterID
			}
		}
		for len(seeds) > 0 {
			q := seeds[len(seeds)-1]
			seeds = seeds[:len(seeds)-1]
			qNeighbors := index.RangeIntoID(idx, q, params.Eps, nbuf)
			nbuf = qNeighbors
			res.RangeQueries++
			if len(qNeighbors) < params.MinPts {
				continue // q is a border object
			}
			res.Core[q] = true
			if opts.CollectSpecificCores {
				res.maybeAddSpecificCore(idx, metric, st, clusterID, q)
			}
			for _, r := range qNeighbors {
				switch res.Labels[r] {
				case cluster.Unclassified:
					res.Labels[r] = clusterID
					seeds = append(seeds, r)
				case cluster.Noise:
					res.Labels[r] = clusterID
				}
			}
		}
		clusterID++
	}
	if opts.CollectSpecificCores {
		res.computeSpecificEps(idx, metric, st)
	}
	return res, nil
}

// maybeAddSpecificCore applies the greedy Definition 6 selection: a freshly
// identified core point joins Scor of its cluster unless it already lies in
// the Eps-neighborhood of a previously selected specific core point. Every
// core point is either selected or covered at the moment it is processed, so
// condition 3 of Definition 6 (complete coverage of Cor) holds by
// construction. The coverage test compares in squared space when the metric
// supports it, and through the strided store kernels by id when the index is
// store-backed (bit-identical: same operand and summation order).
func (r *Result) maybeAddSpecificCore(idx index.Index, metric geom.Metric, st *geom.Store, id cluster.ID, q int) {
	if st != nil {
		eps2 := r.Params.Eps * r.Params.Eps
		for _, s := range r.Scor[id] {
			if st.DistanceSq(s, q) <= eps2 {
				return
			}
		}
		r.Scor[id] = append(r.Scor[id], q)
		return
	}
	qp := idx.Point(q)
	if sq, ok := geom.AsSquared(metric); ok {
		eps2 := r.Params.Eps * r.Params.Eps
		for _, s := range r.Scor[id] {
			if sq.DistanceSq(idx.Point(s), qp) <= eps2 {
				return
			}
		}
	} else {
		for _, s := range r.Scor[id] {
			if metric.Distance(idx.Point(s), qp) <= r.Params.Eps {
				return
			}
		}
	}
	r.Scor[id] = append(r.Scor[id], q)
}

// computeSpecificEps evaluates Definition 7 for every selected specific core
// point: ε_s = Eps + max{dist(s, s_i) | s_i ∈ Cor ∧ s_i ∈ N_Eps(s)}. When no
// other core point lies in the neighborhood the maximum is empty and
// ε_s = Eps. Queries go through index.RangeInto with one reused buffer, and
// the maximum is taken in squared space when the metric supports it (a
// single sqrt per specific core point instead of one per neighbor; exact,
// since the correctly rounded sqrt is monotone and commutes with max).
func (r *Result) computeSpecificEps(idx index.Index, metric geom.Metric, st *geom.Store) {
	sq, hasSq := geom.AsSquared(metric)
	var buf []int
	for _, scor := range r.Scor {
		for _, s := range scor {
			sp := idx.Point(s)
			r.RangeQueries++
			buf = index.RangeIntoID(idx, s, r.Params.Eps, buf)
			var maxDist float64
			switch {
			case st != nil:
				// Strided fold by id — row s against each neighbor row.
				var maxSq float64
				for _, ni := range buf {
					if ni == s || !r.Core[ni] {
						continue
					}
					if d2 := st.DistanceSq(s, ni); d2 > maxSq {
						maxSq = d2
					}
				}
				maxDist = math.Sqrt(maxSq)
			case hasSq:
				var maxSq float64
				for _, ni := range buf {
					if ni == s || !r.Core[ni] {
						continue
					}
					if d2 := sq.DistanceSq(sp, idx.Point(ni)); d2 > maxSq {
						maxSq = d2
					}
				}
				maxDist = math.Sqrt(maxSq)
			default:
				for _, ni := range buf {
					if ni == s || !r.Core[ni] {
						continue
					}
					if d := metric.Distance(sp, idx.Point(ni)); d > maxDist {
						maxDist = d
					}
				}
			}
			r.SpecificEps[s] = r.Params.Eps + maxDist
		}
	}
}
