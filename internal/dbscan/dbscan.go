// Package dbscan implements the density-based clustering algorithm DBSCAN
// (Ester, Kriegel, Sander, Xu — KDD 1996) over any neighborhood index, plus
// the enhancement Section 4 of the DBDC paper describes: the complete set of
// specific core points (Definition 6) and their specific ε-ranges
// (Definition 7) are extracted during the clustering run, so a local site
// can derive its local model without a second pass over the data.
package dbscan

import (
	"fmt"
	"math"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/index"
)

// Params are the two DBSCAN parameters: the neighborhood radius Eps and the
// density threshold MinPts (the minimum cardinality of N_Eps(p), including p
// itself, for p to be a core object).
type Params struct {
	Eps    float64
	MinPts int
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Eps <= 0 {
		return fmt.Errorf("dbscan: Eps must be positive, got %v", p.Eps)
	}
	if p.MinPts < 1 {
		return fmt.Errorf("dbscan: MinPts must be at least 1, got %d", p.MinPts)
	}
	return nil
}

// Options tune a DBSCAN run beyond the algorithmic parameters.
type Options struct {
	// CollectSpecificCores enables the DBDC enhancement: specific core
	// points are selected greedily in processing order during the run and
	// their ε-ranges computed afterwards.
	CollectSpecificCores bool
	// Workers selects intra-site parallelism: with Workers > 1 Run delegates
	// to RunParallel, which issues the per-object region queries from that
	// many goroutines and merges the partial results with a union-find over
	// core-point adjacency. 0 or 1 keeps the classic sequential expansion.
	// The core partition and cluster numbering are identical to the
	// sequential run; see RunParallel for the border-point tie rule.
	Workers int
	// Sharding controls how RunParallel partitions phase 1. The zero value
	// ShardingAuto shards the dataset spatially (grid cells of side ≥ ε
	// plus an ε-halo, each clustered against a cache-local sub-index)
	// whenever the index is store-backed over the Euclidean metric and the
	// geometry supports it, falling back to contiguous index chunks
	// otherwise. ShardingOff forces the chunked path; benchmarks use it to
	// compare the two on identical inputs. Results are identical either
	// way — see RunParallel.
	Sharding ShardingMode
}

// ShardingMode selects RunParallel's phase 1 partitioning strategy.
type ShardingMode int

const (
	// ShardingAuto spatially shards store-backed Euclidean indexes and
	// falls back to index-chunking for everything else (non-store indexes,
	// non-finite coordinates, ε covering the bounding box).
	ShardingAuto ShardingMode = iota
	// ShardingOff always uses the contiguous index-chunk partitioning.
	ShardingOff
)

// Result holds the outcome of a DBSCAN run.
type Result struct {
	Params Params
	// Labels assigns each object its cluster id or noise.
	Labels cluster.Labeling
	// Core marks the core objects (|N_Eps(p)| >= MinPts).
	Core []bool
	// Scor holds, per cluster, the complete set of specific core points in
	// selection order (object indexes). Populated only when
	// Options.CollectSpecificCores was set.
	Scor map[cluster.ID][]int
	// SpecificEps maps each specific core point (by object index) to its
	// specific ε-range ε_s (Definition 7). Populated with Scor.
	SpecificEps map[int]float64
	// RangeQueries counts the region queries issued — the dominant cost of
	// DBSCAN and the quantity its complexity analysis is stated in.
	RangeQueries int
	// Shards is the number of spatial shards RunParallel's phase 1
	// clustered independently; 0 when the run was sequential or used the
	// chunked fallback.
	Shards int
}

// NumClusters returns the number of clusters found.
func (r *Result) NumClusters() int { return r.Labels.NumClusters() }

// IsBorder reports whether object i is a border object: assigned to a
// cluster but not core.
func (r *Result) IsBorder(i int) bool { return r.Labels[i] >= 0 && !r.Core[i] }

// Run clusters the points held by idx. The index supplies both the data and
// the metric, exactly like the R*-tree underneath the original DBSCAN.
// With Options.Workers > 1 the run is delegated to RunParallel.
func Run(idx index.Index, params Params, opts Options) (*Result, error) {
	if opts.Workers > 1 {
		return RunParallel(idx, params, opts)
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	n := idx.Len()
	res := &Result{
		Params: params,
		Labels: cluster.NewLabeling(n),
		Core:   make([]bool, n),
	}
	if opts.CollectSpecificCores {
		res.Scor = make(map[cluster.ID][]int)
		res.SpecificEps = make(map[int]float64)
	}
	metric := idx.Metric()
	// st is the flat backing store when the index is store-backed under the
	// Euclidean metric; the specific-core coverage and ε-range folds then run
	// on the strided kernels by object id.
	st := index.StoreOf(idx)
	var clusterID cluster.ID
	// seeds and nbuf are reused across queries to avoid per-object
	// allocations; every query result is fully consumed before the next
	// query overwrites the buffer. Queries go by object id (RangeIntoID), so
	// store-backed indexes never materialise a query point. bs carries the
	// batched-fold buffers of the specific-core bookkeeping.
	var seeds, nbuf []int
	var bs batchScratch
	for i := 0; i < n; i++ {
		if res.Labels[i] != cluster.Unclassified {
			continue
		}
		neighbors := index.RangeIntoID(idx, i, params.Eps, nbuf)
		nbuf = neighbors
		res.RangeQueries++
		if len(neighbors) < params.MinPts {
			res.Labels[i] = cluster.Noise
			continue
		}
		// i is a core object: it starts a new cluster and, being the first
		// core point processed for this cluster, is always a specific core
		// point.
		res.Core[i] = true
		res.Labels[i] = clusterID
		if opts.CollectSpecificCores {
			res.Scor[clusterID] = append(res.Scor[clusterID], i)
		}
		seeds = seeds[:0]
		for _, q := range neighbors {
			if q == i {
				continue
			}
			switch res.Labels[q] {
			case cluster.Unclassified:
				res.Labels[q] = clusterID
				seeds = append(seeds, q)
			case cluster.Noise:
				// Former noise in reach of a core object becomes a border
				// object of this cluster.
				res.Labels[q] = clusterID
			}
		}
		for len(seeds) > 0 {
			q := seeds[len(seeds)-1]
			seeds = seeds[:len(seeds)-1]
			qNeighbors := index.RangeIntoID(idx, q, params.Eps, nbuf)
			nbuf = qNeighbors
			res.RangeQueries++
			if len(qNeighbors) < params.MinPts {
				continue // q is a border object
			}
			res.Core[q] = true
			if opts.CollectSpecificCores {
				res.maybeAddSpecificCore(idx, metric, st, clusterID, q, &bs)
			}
			for _, r := range qNeighbors {
				switch res.Labels[r] {
				case cluster.Unclassified:
					res.Labels[r] = clusterID
					seeds = append(seeds, r)
				case cluster.Noise:
					res.Labels[r] = clusterID
				}
			}
		}
		clusterID++
	}
	if opts.CollectSpecificCores {
		res.computeSpecificEps(idx, metric, st, &bs)
	}
	return res, nil
}

// batchScratch holds the reusable state of the batched store folds: id and
// distance buffers plus the per-cluster specific-core grids of the coverage
// test. One instance per sequential run or per condensation worker; zero
// value ready to use.
type batchScratch struct {
	ids   []int
	dist  []float64
	grids map[cluster.ID]*scorGrid
}

// grid returns (creating on first use) the coverage grid of cluster id.
func (bs *batchScratch) grid(id cluster.ID) *scorGrid {
	if bs.grids == nil {
		bs.grids = make(map[cluster.ID]*scorGrid)
	}
	g := bs.grids[id]
	if g == nil {
		g = &scorGrid{}
		bs.grids[id] = g
	}
	return g
}

// coverBlock is the block size of the batched fallback coverage scan: large
// enough that the gathered kernel sweep amortizes and cache misses overlap,
// small enough that an early covering hit doesn't pay for the whole Scor
// list.
const coverBlock = 32

// scorCellQuotLimit bounds the cell quotients the coverage grid accepts:
// beyond it the int64 conversion could overflow and scramble cell adjacency,
// so such points route to the exhaustive fallback scan instead.
const scorCellQuotLimit = float64(1 << 62)

// scorGrid is a uniform hash grid over one cluster's selected specific
// cores, the accelerator of the Definition 6 coverage test. Greedy selection
// keeps specific cores pairwise more than Eps apart, so cells of edge 2·Eps
// hold O(1) of them and every point within Eps of a query lies in one of
// the 3^d cells surrounding the query's (the per-axis separation is at most
// half a cell edge, plus rounding margins orders of magnitude below the
// remaining half). Cell coordinates are folded into a 64-bit hash with no
// collision handling: a collision only merges candidate lists, and since
// every candidate is still verified through the batched distance kernel the
// coverage verdict — an OR over independent threshold tests, invariant to
// scan order — is identical to the exhaustive scan's. Points whose cell
// quotient leaves the int64-safe range (NaN, infinities, astronomical
// magnitudes) are never indexed; their presence flips the grid into
// fallback mode and coveredByStore reverts to the exhaustive blocked scan.
type scorGrid struct {
	cell     float64
	origin   []float64
	cells    map[uint64][]int
	coords   []int64
	synced   int
	disabled bool
}

// hashCells folds the int64 cell coordinates in coords into an FNV-1a hash.
func hashCells(coords []int64) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range coords {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// cellCoords writes p's cell coordinates into g.coords, reporting false if
// any quotient is NaN or too large to convert safely.
func (g *scorGrid) cellCoords(p geom.Point) bool {
	for d, o := range g.origin {
		quot := math.Floor((p[d] - o) / g.cell)
		if !(quot >= -scorCellQuotLimit && quot <= scorCellQuotLimit) {
			return false
		}
		g.coords[d] = int64(quot)
	}
	return true
}

// sync indexes the scor entries added since the last call.
func (g *scorGrid) sync(st *geom.Store, scor []int, eps float64) {
	if g.cells == nil {
		g.cell = 2 * eps
		g.origin = append(g.origin[:0], st.Point(scor[0])...)
		g.cells = make(map[uint64][]int)
		g.coords = make([]int64, st.Dim())
	}
	for _, s := range scor[g.synced:] {
		if !g.cellCoords(st.Point(s)) {
			g.disabled = true
			break
		}
		h := hashCells(g.coords)
		g.cells[h] = append(g.cells[h], s)
	}
	g.synced = len(scor)
}

// coveredByStore reports whether object q lies within eps2 of any id in
// scor. The grid narrows the scan to the 3^d cells around q — a complete
// candidate superset of the possible coverers (see scorGrid) — and the
// batched kernel delivers the verdicts, querying with q's row against each
// s-row (flipping the historical kernel(row_s, row_q) operand order is
// immaterial: squared distances are bitwise symmetric for every non-NaN
// operand pair and a NaN distance fails the ≤ eps2 test under either
// order). The selected Scor set is therefore identical to the historical
// one-pair-at-a-time forward scan. Out-of-range coordinates drop to
// coveredByScan, the exhaustive blocked variant.
func coveredByStore(st *geom.Store, g *scorGrid, scor []int, q int, eps, eps2 float64, bs *batchScratch) bool {
	if len(scor) == 0 {
		return false
	}
	g.sync(st, scor, eps)
	qp := st.Point(q)
	if g.disabled || !g.cellCoords(qp) {
		return coveredByScan(st, scor, qp, eps2, bs)
	}
	cand := bs.ids[:0]
	coords := g.coords
	switch len(coords) {
	case 2:
		c0, c1 := coords[0], coords[1]
		for d0 := c0 - 1; d0 <= c0+1; d0++ {
			for d1 := c1 - 1; d1 <= c1+1; d1++ {
				coords[0], coords[1] = d0, d1
				cand = append(cand, g.cells[hashCells(coords)]...)
			}
		}
		coords[0], coords[1] = c0, c1
	default:
		cand = g.gatherNeighbors(0, cand)
	}
	bs.ids = cand[:0]
	if len(cand) == 0 {
		return false
	}
	if cap(bs.dist) < len(cand) {
		bs.dist = make([]float64, len(cand)+coverBlock)
	}
	for _, d2 := range st.DistanceSqBatch(qp, cand, bs.dist[:len(cand)]) {
		if d2 <= eps2 {
			return true
		}
	}
	return false
}

// gatherNeighbors appends the ids of every cell within one step of
// g.coords[axis:] along the remaining axes (recursing one axis at a time;
// g.coords is restored before returning).
func (g *scorGrid) gatherNeighbors(axis int, cand []int) []int {
	if axis == len(g.coords) {
		return append(cand, g.cells[hashCells(g.coords)]...)
	}
	c := g.coords[axis]
	for d := c - 1; d <= c+1; d++ {
		g.coords[axis] = d
		cand = g.gatherNeighbors(axis+1, cand)
	}
	g.coords[axis] = c
	return cand
}

// coveredByScan is the exhaustive coverage fallback: blocks run through the
// batched store kernel newest-first (the most recently selected specific
// core is the likeliest coverer) with an early exit between blocks. The
// verdict is an OR over independent threshold tests, so scan order cannot
// change it.
func coveredByScan(st *geom.Store, scor []int, qp geom.Point, eps2 float64, bs *batchScratch) bool {
	if cap(bs.dist) < coverBlock {
		bs.dist = make([]float64, coverBlock)
	}
	for end := len(scor); end > 0; end -= coverBlock {
		base := end - coverBlock
		if base < 0 {
			base = 0
		}
		d := st.DistanceSqBatch(qp, scor[base:end], bs.dist[:end-base])
		for _, d2 := range d {
			if d2 <= eps2 {
				return true
			}
		}
	}
	return false
}

// maxCoreNeighborSq folds the maximum squared kernel distance from s to its
// core neighbors in buf through one batched sweep: ids are filtered first
// (the fold order is buf order either way), distances computed in one
// gather, maximum taken over the block. Operand order matches the historical
// per-pair Store.DistanceSq(s, ni) fold exactly.
func maxCoreNeighborSq(st *geom.Store, core []bool, buf []int, s int, bs *batchScratch) float64 {
	ids := bs.ids[:0]
	for _, ni := range buf {
		if ni == s || !core[ni] {
			continue
		}
		ids = append(ids, ni)
	}
	var maxSq float64
	if len(ids) > 0 {
		if cap(bs.dist) < len(ids) {
			bs.dist = make([]float64, len(ids)+coverBlock)
		}
		d := st.DistanceSqBatch(st.Point(s), ids, bs.dist[:len(ids)])
		for _, d2 := range d {
			if d2 > maxSq {
				maxSq = d2
			}
		}
	}
	bs.ids = ids
	return maxSq
}

// maybeAddSpecificCore applies the greedy Definition 6 selection: a freshly
// identified core point joins Scor of its cluster unless it already lies in
// the Eps-neighborhood of a previously selected specific core point. Every
// core point is either selected or covered at the moment it is processed, so
// condition 3 of Definition 6 (complete coverage of Cor) holds by
// construction. The coverage test compares in squared space when the metric
// supports it, and through the batched store kernels by id when the index is
// store-backed (identical verdicts; see coveredByStore).
func (r *Result) maybeAddSpecificCore(idx index.Index, metric geom.Metric, st *geom.Store, id cluster.ID, q int, bs *batchScratch) {
	if st != nil {
		eps := r.Params.Eps
		if !coveredByStore(st, bs.grid(id), r.Scor[id], q, eps, eps*eps, bs) {
			r.Scor[id] = append(r.Scor[id], q)
		}
		return
	}
	qp := idx.Point(q)
	if sq, ok := geom.AsSquared(metric); ok {
		eps2 := r.Params.Eps * r.Params.Eps
		for _, s := range r.Scor[id] {
			if sq.DistanceSq(idx.Point(s), qp) <= eps2 {
				return
			}
		}
	} else {
		for _, s := range r.Scor[id] {
			if metric.Distance(idx.Point(s), qp) <= r.Params.Eps {
				return
			}
		}
	}
	r.Scor[id] = append(r.Scor[id], q)
}

// computeSpecificEps evaluates Definition 7 for every selected specific core
// point: ε_s = Eps + max{dist(s, s_i) | s_i ∈ Cor ∧ s_i ∈ N_Eps(s)}. When no
// other core point lies in the neighborhood the maximum is empty and
// ε_s = Eps. Queries go through index.RangeInto with one reused buffer, and
// the maximum is taken in squared space when the metric supports it (a
// single sqrt per specific core point instead of one per neighbor; exact,
// since the correctly rounded sqrt is monotone and commutes with max).
func (r *Result) computeSpecificEps(idx index.Index, metric geom.Metric, st *geom.Store, bs *batchScratch) {
	sq, hasSq := geom.AsSquared(metric)
	var buf []int
	for _, scor := range r.Scor {
		for _, s := range scor {
			sp := idx.Point(s)
			r.RangeQueries++
			buf = index.RangeIntoID(idx, s, r.Params.Eps, buf)
			var maxDist float64
			switch {
			case st != nil:
				// Batched fold by id — row s against all core neighbor rows
				// in one kernel sweep, same operand order as the historical
				// per-pair fold.
				maxDist = math.Sqrt(maxCoreNeighborSq(st, r.Core, buf, s, bs))
			case hasSq:
				var maxSq float64
				for _, ni := range buf {
					if ni == s || !r.Core[ni] {
						continue
					}
					if d2 := sq.DistanceSq(sp, idx.Point(ni)); d2 > maxSq {
						maxSq = d2
					}
				}
				maxDist = math.Sqrt(maxSq)
			default:
				for _, ni := range buf {
					if ni == s || !r.Core[ni] {
						continue
					}
					if d := metric.Distance(sp, idx.Point(ni)); d > maxDist {
						maxDist = d
					}
				}
			}
			r.SpecificEps[s] = r.Params.Eps + maxDist
		}
	}
}
