package dbscan

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/index"
)

// budgetDataset builds a clustered point set with enough structure that
// every cluster selects several specific cores: three gaussian blobs plus
// uniform noise.
func budgetDataset(seed int64, n int) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	var pts []geom.Point
	centers := [][2]float64{{0, 0}, {6, 1}, {-4, 5}}
	for _, c := range centers {
		for i := 0; i < n; i++ {
			pts = append(pts, geom.Point{c[0] + rng.NormFloat64()*0.8, c[1] + rng.NormFloat64()*0.8})
		}
	}
	for i := 0; i < n/3; i++ {
		pts = append(pts, geom.Point{rng.Float64()*20 - 10, rng.Float64()*20 - 10})
	}
	return pts
}

func budgetRun(t *testing.T, kind index.Kind, pts []geom.Point, workers int) *Result {
	t.Helper()
	params := Params{Eps: 0.6, MinPts: 5}
	idx, err := index.Build(kind, pts, geom.Euclidean{}, params.Eps)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(idx, params, Options{CollectSpecificCores: true, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestBudgetScorProperties pins the selector's contract for every index
// kind and both execution modes (sequential and parallel kernel):
//
//  1. per-cluster selection size ≤ B,
//  2. coverage monotonically non-decreasing in B,
//  3. permutation-invariance of the stored candidate order,
//  4. B ≥ |Scor_C| returns the unbudgeted candidate slices unchanged
//     (same objects, same order — the wire-identity precondition).
//
// Runs under -race in CI (the parallel kernel rows).
func TestBudgetScorProperties(t *testing.T) {
	pts := budgetDataset(42, 120)
	metric := geom.Euclidean{}
	for _, kind := range []index.Kind{
		index.KindLinear, index.KindGrid, index.KindKDTree, index.KindRStar, index.KindMTree,
	} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", kind, workers), func(t *testing.T) {
				res := budgetRun(t, kind, pts, workers)
				if len(res.Scor) == 0 {
					t.Fatal("dataset produced no clusters")
				}
				maxScor := 0
				for _, scor := range res.Scor {
					if len(scor) > maxScor {
						maxScor = len(scor)
					}
				}
				if maxScor < 3 {
					t.Fatalf("dataset too easy: largest Scor has %d candidates", maxScor)
				}

				prevCoverage := -1.0
				for b := 1; b <= maxScor+1; b++ {
					scor, stats := BudgetScor(pts, res, metric, b)
					// Property 1: the budget binds per cluster.
					for id, sel := range scor {
						if len(sel) > b {
							t.Fatalf("B=%d: cluster %d selected %d cores", b, id, len(sel))
						}
						if len(sel) == 0 && len(res.Scor[id]) > 0 {
							t.Fatalf("B=%d: cluster %d lost all representatives", b, id)
						}
						for _, s := range sel {
							if res.Labels[s] != id {
								t.Fatalf("B=%d: selected %d not a member of cluster %d", b, s, id)
							}
						}
					}
					if stats.Selected > stats.Candidates || stats.Dropped() < 0 {
						t.Fatalf("B=%d: inconsistent stats %+v", b, stats)
					}
					// Property 2: coverage non-decreasing in B.
					cov := stats.CoverageFraction()
					if cov < prevCoverage {
						t.Fatalf("B=%d: coverage %f dropped below B=%d's %f", b, cov, b-1, prevCoverage)
					}
					prevCoverage = cov

					// Property 3: permuting the stored candidate order must
					// not change the selection (set, order, or stats).
					perm := &Result{
						Params:      res.Params,
						Labels:      res.Labels,
						Core:        res.Core,
						Scor:        make(map[cluster.ID][]int, len(res.Scor)),
						SpecificEps: res.SpecificEps,
					}
					prng := rand.New(rand.NewSource(int64(b) * 977))
					for id, sel := range res.Scor {
						shuffled := append([]int(nil), sel...)
						prng.Shuffle(len(shuffled), func(i, j int) {
							shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
						})
						perm.Scor[id] = shuffled
					}
					permScor, permStats := BudgetScor(pts, perm, metric, b)
					if b <= maxScor { // identity path keeps the (permuted) input order by design
						for id := range scor {
							if len(res.Scor[id]) > b && !reflect.DeepEqual(scor[id], permScor[id]) {
								t.Fatalf("B=%d: cluster %d selection depends on candidate order: %v vs %v",
									b, id, scor[id], permScor[id])
							}
						}
					}
					if permStats.Covered != stats.Covered || permStats.Selected != stats.Selected {
						t.Fatalf("B=%d: stats depend on candidate order: %+v vs %+v", b, stats, permStats)
					}
				}

				// Property 4: a budget at or above every cluster's candidate
				// count is the identity — the exact slices, not copies in a
				// different order.
				for _, b := range []int{maxScor, maxScor + 7, 0} {
					scor, stats := BudgetScor(pts, res, metric, b)
					if b != 0 && b < maxScor {
						continue
					}
					for id, sel := range scor {
						if !reflect.DeepEqual(sel, res.Scor[id]) {
							t.Fatalf("B=%d: cluster %d not identical to unbudgeted: %v vs %v",
								b, id, sel, res.Scor[id])
						}
					}
					if stats.Dropped() != 0 {
						t.Fatalf("B=%d: identity budget dropped %d cores", b, stats.Dropped())
					}
				}
			})
		}
	}
}

// TestBudgetScorGreedyOptimalFirstPick pins the greedy rule on a hand-built
// clustering: with B=1 the selector must pick the candidate covering the
// most members, and exact coverage ties must break toward the lowest row
// id.
func TestBudgetScorGreedyOptimalFirstPick(t *testing.T) {
	// One line of 7 points, Eps 1.1: the middle point is in reach of
	// everything within distance ~1; crafted so point 3 (center) covers the
	// most members under its specific eps.
	pts := []geom.Point{
		{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}, {5, 0}, {6, 0},
	}
	params := Params{Eps: 1.1, MinPts: 2}
	idx, err := index.Build(index.KindLinear, pts, geom.Euclidean{}, params.Eps)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(idx, params, Options{CollectSpecificCores: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() != 1 {
		t.Fatalf("want one chain cluster, got %d", res.NumClusters())
	}
	scor, stats := BudgetScor(pts, res, geom.Euclidean{}, 1)
	sel := scor[0]
	if len(sel) != 1 {
		t.Fatalf("B=1 selected %v", sel)
	}
	// Verify the pick is a true argmax of single-representative coverage,
	// and the lowest row id among the argmaxes.
	bestCover, bestRow := -1, -1
	for _, s := range res.Scor[0] {
		cov := 0
		eps := res.SpecificEps[s]
		for m, l := range res.Labels {
			if l == 0 && (geom.Euclidean{}).Distance(pts[m], pts[s]) <= eps {
				cov++
			}
		}
		if cov > bestCover || (cov == bestCover && s < bestRow) {
			bestCover, bestRow = cov, s
		}
	}
	if sel[0] != bestRow {
		t.Fatalf("greedy first pick = %d (covers %d), argmax/lowest-row = %d (covers %d)",
			sel[0], stats.Covered, bestRow, bestCover)
	}
	if stats.Covered != bestCover {
		t.Fatalf("stats.Covered = %d, want %d", stats.Covered, bestCover)
	}
}

// TestBudgetScorEarlyStop: once every coverable member is covered, leftover
// budget must not pad the selection with zero-gain representatives.
func TestBudgetScorEarlyStop(t *testing.T) {
	pts := budgetDataset(7, 100)
	res := budgetRun(t, index.KindKDTree, pts, 1)
	maxScor := 0
	for _, scor := range res.Scor {
		if len(scor) > maxScor {
			maxScor = len(scor)
		}
	}
	if maxScor < 2 {
		t.Skip("no cluster with multiple candidates")
	}
	b := maxScor - 1 // force the greedy path on the largest cluster
	scor, stats := BudgetScor(pts, res, geom.Euclidean{}, b)
	_ = scor
	// Coverage at the early-stopped selection must equal coverage at the
	// full candidate set: stopping early may never lose members.
	_, full := BudgetScor(pts, res, geom.Euclidean{}, 0)
	if stats.Covered > full.Covered {
		t.Fatalf("budgeted coverage %d exceeds unbudgeted %d", stats.Covered, full.Covered)
	}
}
