package quality

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/dbdc-go/dbdc/internal/cluster"
)

// labelPair generates two random labelings of the same objects.
type labelPair struct {
	a, b cluster.Labeling
}

func (labelPair) Generate(rng *rand.Rand, size int) reflect.Value {
	n := rng.Intn(size + 1)
	mk := func() cluster.Labeling {
		l := make(cluster.Labeling, n)
		for i := range l {
			if rng.Float64() < 0.25 {
				l[i] = cluster.Noise
			} else {
				l[i] = cluster.ID(rng.Intn(5))
			}
		}
		return l
	}
	return reflect.ValueOf(labelPair{a: mk(), b: mk()})
}

// Property: all quality measures stay within [0, 1] on arbitrary label
// pairs, and both Q_DBDC variants score 1 on identical labelings under
// qp = 1.
func TestQuickQualityBounds(t *testing.T) {
	f := func(p labelPair) bool {
		pi, err := QDBDCPI(p.a, p.b, 1)
		if err != nil || pi < 0 || pi > 1 {
			return false
		}
		pii, err := QDBDCPII(p.a, p.b)
		if err != nil || pii < 0 || pii > 1 {
			return false
		}
		idPI, err := QDBDCPI(p.a, p.a, 1)
		if err != nil || idPI != 1 {
			return false
		}
		idPII, err := QDBDCPII(p.a, p.a)
		return err == nil && idPII == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: P^II is invariant under renaming of cluster ids on either
// side.
func TestQuickPIIRenamingInvariant(t *testing.T) {
	f := func(p labelPair) bool {
		orig, err := QDBDCPII(p.a, p.b)
		if err != nil {
			return false
		}
		renamed, err := QDBDCPII(p.a.Canonicalize(), p.b.Canonicalize())
		if err != nil {
			return false
		}
		return math.Abs(orig-renamed) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Q_DBDC under P^I is monotonically non-increasing in the
// quality parameter qp.
func TestQuickPIMonotoneInQP(t *testing.T) {
	f := func(p labelPair) bool {
		prev := math.Inf(1)
		for qp := 1; qp <= 5; qp++ {
			v, err := QDBDCPI(p.a, p.b, qp)
			if err != nil {
				return false
			}
			if v > prev+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the external indices are symmetric in their arguments and
// bounded.
func TestQuickExternalIndices(t *testing.T) {
	f := func(p labelPair) bool {
		rand1, err := RandIndex(p.a, p.b)
		if err != nil || rand1 < 0 || rand1 > 1 {
			return false
		}
		rand2, err := RandIndex(p.b, p.a)
		if err != nil || math.Abs(rand1-rand2) > 1e-12 {
			return false
		}
		ari1, err := AdjustedRandIndex(p.a, p.b)
		if err != nil || ari1 > 1+1e-12 {
			return false
		}
		ari2, err := AdjustedRandIndex(p.b, p.a)
		if err != nil || math.Abs(ari1-ari2) > 1e-12 {
			return false
		}
		nmi1, err := NMI(p.a, p.b)
		if err != nil || nmi1 < -1e-12 || nmi1 > 1+1e-9 {
			return false
		}
		nmi2, err := NMI(p.b, p.a)
		return err == nil && math.Abs(nmi1-nmi2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
