// Package quality implements the distributed-clustering quality measures of
// Section 8 of the DBDC paper: the overall quality Q_DBDC (Definition 9) as
// the mean of a per-object quality, with the discrete object quality
// function P^I (Definition 10) and the continuous P^II (Definition 11).
//
// Note on the source text: the printed case tables of Definitions 10 and 11
// are garbled (duplicated zero cases). This implementation follows the
// semantics the prose states, which the experiments of Section 9 confirm:
// an object noise in both clusterings scores 1; noise in exactly one scores
// 0; an object clustered in both scores 1 under P^I iff the two clusters
// share at least qp objects, and |C_d ∩ C_c| / |C_d ∪ C_c| (the Jaccard
// coefficient of its two clusters) under P^II.
//
// The package additionally provides standard external indices (Rand,
// adjusted Rand, purity, NMI) used to cross-check the paper's measures.
package quality

import (
	"fmt"

	"github.com/dbdc-go/dbdc/internal/cluster"
)

// pairStats precomputes, for a pair of labelings, everything the object
// quality functions need: per-object cluster sizes and the intersection
// size of the two clusters containing each object.
type pairStats struct {
	distr, central cluster.Labeling
	sizeDistr      map[cluster.ID]int
	sizeCentral    map[cluster.ID]int
	intersection   map[[2]cluster.ID]int
}

func newPairStats(distr, central cluster.Labeling) (*pairStats, error) {
	if len(distr) != len(central) {
		return nil, fmt.Errorf("quality: labelings disagree on size: %d vs %d",
			len(distr), len(central))
	}
	s := &pairStats{
		distr:        distr,
		central:      central,
		sizeDistr:    distr.Sizes(),
		sizeCentral:  central.Sizes(),
		intersection: make(map[[2]cluster.ID]int),
	}
	for i := range distr {
		if distr[i] >= 0 && central[i] >= 0 {
			s.intersection[[2]cluster.ID{distr[i], central[i]}]++
		}
	}
	return s, nil
}

// PI is the discrete object quality function P^I of Definition 10 applied
// to object i, with quality parameter qp.
func (s *pairStats) PI(i int, qp int) float64 {
	d, c := s.distr[i], s.central[i]
	switch {
	case d == cluster.Noise && c == cluster.Noise:
		return 1
	case d == cluster.Noise || c == cluster.Noise:
		return 0
	case s.intersection[[2]cluster.ID{d, c}] >= qp:
		return 1
	default:
		return 0
	}
}

// PII is the continuous object quality function P^II of Definition 11
// applied to object i: the Jaccard coefficient of the two clusters
// containing it.
func (s *pairStats) PII(i int) float64 {
	d, c := s.distr[i], s.central[i]
	switch {
	case d == cluster.Noise && c == cluster.Noise:
		return 1
	case d == cluster.Noise || c == cluster.Noise:
		return 0
	default:
		inter := s.intersection[[2]cluster.ID{d, c}]
		union := s.sizeDistr[d] + s.sizeCentral[c] - inter
		return float64(inter) / float64(union)
	}
}

// QDBDCPI computes Q_DBDC (Definition 9) under P^I with quality parameter
// qp. The paper recommends qp = MinPts: a cluster has at least MinPts
// members, so demanding fewer shared objects would weaken the criterion and
// demanding more would be unsatisfiable for minimum-size clusters.
func QDBDCPI(distr, central cluster.Labeling, qp int) (float64, error) {
	if qp < 1 {
		return 0, fmt.Errorf("quality: qp must be positive, got %d", qp)
	}
	s, err := newPairStats(distr, central)
	if err != nil {
		return 0, err
	}
	if len(distr) == 0 {
		return 1, nil
	}
	var sum float64
	for i := range distr {
		sum += s.PI(i, qp)
	}
	return sum / float64(len(distr)), nil
}

// QDBDCPII computes Q_DBDC under P^II.
func QDBDCPII(distr, central cluster.Labeling) (float64, error) {
	s, err := newPairStats(distr, central)
	if err != nil {
		return 0, err
	}
	if len(distr) == 0 {
		return 1, nil
	}
	var sum float64
	for i := range distr {
		sum += s.PII(i)
	}
	return sum / float64(len(distr)), nil
}

// PerObjectPII returns the P^II value of every object — useful for
// diagnosing where a distributed clustering loses quality.
func PerObjectPII(distr, central cluster.Labeling) ([]float64, error) {
	s, err := newPairStats(distr, central)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(distr))
	for i := range distr {
		out[i] = s.PII(i)
	}
	return out, nil
}
