package quality

import (
	"math"
	"math/rand"
	"testing"

	"github.com/dbdc-go/dbdc/internal/cluster"
)

const eps = 1e-12

func TestSizeMismatchRejected(t *testing.T) {
	a := cluster.Labeling{0}
	b := cluster.Labeling{0, 1}
	if _, err := QDBDCPI(a, b, 1); err == nil {
		t.Error("PI accepted mismatch")
	}
	if _, err := QDBDCPII(a, b); err == nil {
		t.Error("PII accepted mismatch")
	}
	if _, err := RandIndex(a, b); err == nil {
		t.Error("Rand accepted mismatch")
	}
	if _, err := AdjustedRandIndex(a, b); err == nil {
		t.Error("ARI accepted mismatch")
	}
	if _, err := Purity(a, b); err == nil {
		t.Error("Purity accepted mismatch")
	}
	if _, err := NMI(a, b); err == nil {
		t.Error("NMI accepted mismatch")
	}
	if _, err := PerObjectPII(a, b); err == nil {
		t.Error("PerObjectPII accepted mismatch")
	}
}

func TestQPValidation(t *testing.T) {
	if _, err := QDBDCPI(cluster.Labeling{0}, cluster.Labeling{0}, 0); err == nil {
		t.Error("qp=0 accepted")
	}
}

// The identity requirement from Section 8: comparing a reference clustering
// to itself must yield quality 1 ("needless to say ... the quality should
// be 100%").
func TestIdentityIsPerfect(t *testing.T) {
	l := cluster.Labeling{0, 0, 0, 1, 1, 1, cluster.Noise, 2, 2, 2}
	if q, err := QDBDCPI(l, l, 3); err != nil || q != 1 {
		t.Errorf("PI identity = %v, %v", q, err)
	}
	if q, err := QDBDCPII(l, l); err != nil || q != 1 {
		t.Errorf("PII identity = %v, %v", q, err)
	}
	for name, f := range map[string]func(a, b cluster.Labeling) (float64, error){
		"rand": RandIndex, "ari": AdjustedRandIndex, "purity": Purity, "nmi": NMI,
	} {
		if q, err := f(l, l); err != nil || math.Abs(q-1) > eps {
			t.Errorf("%s identity = %v, %v", name, q, err)
		}
	}
}

func TestEmptyLabelings(t *testing.T) {
	var l cluster.Labeling
	if q, _ := QDBDCPI(l, l, 1); q != 1 {
		t.Error("PI of empty != 1")
	}
	if q, _ := QDBDCPII(l, l); q != 1 {
		t.Error("PII of empty != 1")
	}
}

func TestNoiseCases(t *testing.T) {
	// Object 0: noise in both → 1. Object 1: noise in distributed only →
	// 0. Object 2: noise in central only → 0.
	distr := cluster.Labeling{cluster.Noise, cluster.Noise, 0, 0, 0}
	central := cluster.Labeling{cluster.Noise, 0, cluster.Noise, 0, 0}
	s, err := newPairStats(distr, central)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.PI(0, 1); got != 1 {
		t.Errorf("PI noise-both = %v", got)
	}
	if got := s.PI(1, 1); got != 0 {
		t.Errorf("PI noise-distr = %v", got)
	}
	if got := s.PI(2, 1); got != 0 {
		t.Errorf("PI noise-central = %v", got)
	}
	if got := s.PII(0); got != 1 {
		t.Errorf("PII noise-both = %v", got)
	}
	if got := s.PII(1); got != 0 {
		t.Errorf("PII noise-distr = %v", got)
	}
	if got := s.PII(2); got != 0 {
		t.Errorf("PII noise-central = %v", got)
	}
}

func TestPIQualityParameter(t *testing.T) {
	// Clusters intersect in exactly 2 objects.
	distr := cluster.Labeling{0, 0, 0, 1}
	central := cluster.Labeling{5, 5, 6, 6}
	// Object 0: C_d = {0,1,2}, C_c = {0,1}: intersection 2.
	if q, _ := QDBDCPI(distr, central, 2); q != 1 {
		// obj0: |{0,1,2}∩{0,1}|=2 ≥2 →1; obj1: same →1; obj2: C_c={2,3}
		// |{0,1,2}∩{2,3}|=1 <2 →0; obj3: C_d={3} ∩ C_c={2,3} =1 <2 →0.
		// Mean = 0.5, not 1 — assert the exact value below instead.
		t.Logf("qp=2: %v", q)
	}
	q2, err := QDBDCPI(distr, central, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q2-0.5) > eps {
		t.Errorf("PI(qp=2) = %v, want 0.5", q2)
	}
	q1, err := QDBDCPI(distr, central, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q1-1.0) > eps {
		t.Errorf("PI(qp=1) = %v, want 1 (every pair intersects)", q1)
	}
	q3, err := QDBDCPI(distr, central, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q3-0.0) > eps {
		t.Errorf("PI(qp=3) = %v, want 0", q3)
	}
}

func TestPIIJaccard(t *testing.T) {
	// C_d = {0,1,2}, C_c = {0,1}: Jaccard = 2/3.
	distr := cluster.Labeling{0, 0, 0}
	central := cluster.Labeling{5, 5, 6}
	s, err := newPairStats(distr, central)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.PII(0); math.Abs(got-2.0/3) > eps {
		t.Errorf("PII = %v, want 2/3", got)
	}
	// Object 2: C_d = {0,1,2}, C_c = {2}: Jaccard = 1/3.
	if got := s.PII(2); math.Abs(got-1.0/3) > eps {
		t.Errorf("PII = %v, want 1/3", got)
	}
}

// The paper's motivating example for P^II: a split cluster scores lower
// under P^II than under P^I, which only checks the qp threshold.
func TestPIIMoreSensitiveThanPI(t *testing.T) {
	// Central: one cluster of 100. Distributed: split into two halves.
	n := 100
	distr := make(cluster.Labeling, n)
	central := make(cluster.Labeling, n)
	for i := 0; i < n; i++ {
		central[i] = 0
		distr[i] = cluster.ID(i / 50)
	}
	pi, err := QDBDCPI(distr, central, 5)
	if err != nil {
		t.Fatal(err)
	}
	pii, err := QDBDCPII(distr, central)
	if err != nil {
		t.Fatal(err)
	}
	if pi != 1 {
		t.Errorf("PI = %v, want 1 (each half shares ≥5 with the central cluster)", pi)
	}
	if math.Abs(pii-0.5) > eps {
		t.Errorf("PII = %v, want 0.5 (Jaccard of half vs whole)", pii)
	}
}

// Property: both measures stay in [0,1], are exactly 1 on identical
// labelings, and P^II never exceeds P^I with qp=1 (Jaccard ≤ 1 whenever the
// object is clustered in both).
func TestBoundsOnRandomLabelings(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(60)
		a := make(cluster.Labeling, n)
		b := make(cluster.Labeling, n)
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.2 {
				a[i] = cluster.Noise
			} else {
				a[i] = cluster.ID(rng.Intn(4))
			}
			if rng.Float64() < 0.2 {
				b[i] = cluster.Noise
			} else {
				b[i] = cluster.ID(rng.Intn(4))
			}
		}
		pi, err := QDBDCPI(a, b, 1+rng.Intn(3))
		if err != nil {
			t.Fatal(err)
		}
		pii, err := QDBDCPII(a, b)
		if err != nil {
			t.Fatal(err)
		}
		pi1, err := QDBDCPI(a, b, 1)
		if err != nil {
			t.Fatal(err)
		}
		for name, v := range map[string]float64{"PI": pi, "PII": pii} {
			if v < 0 || v > 1 {
				t.Fatalf("%s = %v out of [0,1]", name, v)
			}
		}
		if pii > pi1+eps {
			t.Fatalf("PII %v exceeds PI(qp=1) %v", pii, pi1)
		}
	}
}

func TestRandIndexKnownValue(t *testing.T) {
	a := cluster.Labeling{0, 0, 1, 1}
	b := cluster.Labeling{0, 1, 1, 1}
	// Pairs: (0,1): same in a, diff in b → disagree. (0,2): diff, diff →
	// agree. (0,3): diff, diff → agree. (1,2): diff, same → disagree.
	// (1,3): diff, same → disagree. (2,3): same, same → agree.
	// Rand = 3/6.
	got, err := RandIndex(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > eps {
		t.Errorf("Rand = %v, want 0.5", got)
	}
}

func TestARIChanceLevel(t *testing.T) {
	// Random independent labelings: ARI should hover near 0, far below 1.
	rng := rand.New(rand.NewSource(2))
	n := 500
	a := make(cluster.Labeling, n)
	b := make(cluster.Labeling, n)
	for i := 0; i < n; i++ {
		a[i] = cluster.ID(rng.Intn(5))
		b[i] = cluster.ID(rng.Intn(5))
	}
	got, err := AdjustedRandIndex(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got) > 0.05 {
		t.Errorf("ARI of independent labelings = %v, want ≈0", got)
	}
}

func TestARIPermutationInvariant(t *testing.T) {
	a := cluster.Labeling{0, 0, 1, 1, 2, 2}
	b := cluster.Labeling{5, 5, 9, 9, 7, 7} // same partition, renamed
	got, err := AdjustedRandIndex(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > eps {
		t.Errorf("ARI of renamed partition = %v, want 1", got)
	}
}

func TestPurityKnownValue(t *testing.T) {
	a := cluster.Labeling{0, 0, 0, 1, 1}
	b := cluster.Labeling{0, 0, 1, 1, 1}
	// Cluster 0 of a: best overlap 2 (class 0); cluster 1: best 2 (class
	// 1). Purity = 4/5.
	got, err := Purity(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.8) > eps {
		t.Errorf("Purity = %v, want 0.8", got)
	}
}

func TestNMIIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 2000
	a := make(cluster.Labeling, n)
	b := make(cluster.Labeling, n)
	for i := 0; i < n; i++ {
		a[i] = cluster.ID(rng.Intn(4))
		b[i] = cluster.ID(rng.Intn(4))
	}
	got, err := NMI(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got > 0.05 {
		t.Errorf("NMI of independent labelings = %v, want ≈0", got)
	}
}

func TestPerObjectPII(t *testing.T) {
	distr := cluster.Labeling{0, 0, cluster.Noise}
	central := cluster.Labeling{1, 1, cluster.Noise}
	got, err := PerObjectPII(distr, central)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("PerObjectPII[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
