package quality

import (
	"fmt"
	"math"

	"github.com/dbdc-go/dbdc/internal/cluster"
)

// The external indices below treat noise as one additional class, the
// common convention when comparing density-based clusterings that may
// label different objects as noise.

func classOf(id cluster.ID) cluster.ID {
	if id < 0 {
		return cluster.Noise
	}
	return id
}

// RandIndex computes the Rand index between two labelings: the fraction of
// object pairs on which the clusterings agree (both together or both
// separated).
func RandIndex(a, b cluster.Labeling) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("quality: labelings disagree on size")
	}
	n := len(a)
	if n < 2 {
		return 1, nil
	}
	var agree, total float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sameA := classOf(a[i]) == classOf(a[j])
			sameB := classOf(b[i]) == classOf(b[j])
			if sameA == sameB {
				agree++
			}
			total++
		}
	}
	return agree / total, nil
}

// pairCounts returns the sufficient statistics of the pair-counting
// indices: sum of C(n_ij,2), sum of C(a_i,2), sum of C(b_j,2) and C(n,2).
func pairCounts(a, b cluster.Labeling) (sumIJ, sumA, sumB, totalPairs float64) {
	table := make(map[[2]cluster.ID]int)
	rowSum := make(map[cluster.ID]int)
	colSum := make(map[cluster.ID]int)
	for i := range a {
		ka, kb := classOf(a[i]), classOf(b[i])
		table[[2]cluster.ID{ka, kb}]++
		rowSum[ka]++
		colSum[kb]++
	}
	choose2 := func(n int) float64 { return float64(n) * float64(n-1) / 2 }
	for _, v := range table {
		sumIJ += choose2(v)
	}
	for _, v := range rowSum {
		sumA += choose2(v)
	}
	for _, v := range colSum {
		sumB += choose2(v)
	}
	totalPairs = choose2(len(a))
	return
}

// AdjustedRandIndex computes the chance-corrected Rand index (Hubert &
// Arabie). 1 means identical partitions; near 0 means agreement expected by
// chance.
func AdjustedRandIndex(a, b cluster.Labeling) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("quality: labelings disagree on size")
	}
	if len(a) < 2 {
		return 1, nil
	}
	sumIJ, sumA, sumB, total := pairCounts(a, b)
	expected := sumA * sumB / total
	maxIndex := (sumA + sumB) / 2
	if maxIndex == expected {
		return 1, nil // both partitions trivial (all singletons or all one)
	}
	return (sumIJ - expected) / (maxIndex - expected), nil
}

// Purity computes the purity of labeling a against reference b: each
// cluster of a votes for its dominant reference class; purity is the
// fraction of objects covered by those votes.
func Purity(a, b cluster.Labeling) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("quality: labelings disagree on size")
	}
	if len(a) == 0 {
		return 1, nil
	}
	table := make(map[cluster.ID]map[cluster.ID]int)
	for i := range a {
		ka, kb := classOf(a[i]), classOf(b[i])
		if table[ka] == nil {
			table[ka] = make(map[cluster.ID]int)
		}
		table[ka][kb]++
	}
	var sum int
	for _, row := range table {
		best := 0
		for _, v := range row {
			if v > best {
				best = v
			}
		}
		sum += best
	}
	return float64(sum) / float64(len(a)), nil
}

// NMI computes the normalized mutual information between two labelings
// (normalised by the arithmetic mean of the entropies). Returns 1 when both
// partitions are identical and both trivial partitions are defined as NMI 1
// with themselves.
func NMI(a, b cluster.Labeling) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("quality: labelings disagree on size")
	}
	n := float64(len(a))
	if n == 0 {
		return 1, nil
	}
	joint := make(map[[2]cluster.ID]float64)
	pa := make(map[cluster.ID]float64)
	pb := make(map[cluster.ID]float64)
	for i := range a {
		ka, kb := classOf(a[i]), classOf(b[i])
		joint[[2]cluster.ID{ka, kb}]++
		pa[ka]++
		pb[kb]++
	}
	var mi, ha, hb float64
	for k, v := range joint {
		pxy := v / n
		px := pa[k[0]] / n
		py := pb[k[1]] / n
		mi += pxy * math.Log(pxy/(px*py))
	}
	for _, v := range pa {
		p := v / n
		ha -= p * math.Log(p)
	}
	for _, v := range pb {
		p := v / n
		hb -= p * math.Log(p)
	}
	if ha == 0 && hb == 0 {
		return 1, nil // both trivial and identical
	}
	denom := (ha + hb) / 2
	if denom == 0 {
		return 0, nil
	}
	return mi / denom, nil
}
