package model

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/geom"
)

func deltaFixture() *LocalDelta {
	return &LocalDelta{
		SiteID:      "site-a",
		Kind:        RepScor,
		EpsLocal:    0.5,
		MinPts:      4,
		BaseSeq:     3,
		Seq:         4,
		NumObjects:  120,
		NumClusters: 2,
		Removed:     []uint32{1, 7},
		Added: []DeltaRep{
			{ID: 9, Rep: Representative{Point: geom.Point{1, 2}, Eps: 0.4, LocalCluster: 0}},
			{ID: 10, Rep: Representative{Point: geom.Point{-3, 0.5}, Eps: 0.3, LocalCluster: 1}},
		},
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	d := deltaFixture()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	b, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got LocalDelta
	if err := got.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, d) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, d)
	}
	// Prefix decode must consume exactly the delta and tolerate a trailer.
	n, err := got.UnmarshalBinaryPrefix(append(b, 0xAA, 0xBB))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) {
		t.Fatalf("prefix decode consumed %d of %d bytes", n, len(b))
	}
}

func TestDeltaValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*LocalDelta)
	}{
		{"no site", func(d *LocalDelta) { d.SiteID = "" }},
		{"bad kind", func(d *LocalDelta) { d.Kind = "nonsense" }},
		{"bad eps", func(d *LocalDelta) { d.EpsLocal = 0 }},
		{"zero seq", func(d *LocalDelta) { d.Seq = 0; d.BaseSeq = 0; d.Removed = nil }},
		{"base after seq", func(d *LocalDelta) { d.BaseSeq = 9 }},
		{"snapshot with removals", func(d *LocalDelta) { d.BaseSeq = 0 }},
		{"duplicate removal", func(d *LocalDelta) { d.Removed = []uint32{1, 1} }},
		{"duplicate addition", func(d *LocalDelta) { d.Added[1].ID = d.Added[0].ID }},
		{"empty point", func(d *LocalDelta) { d.Added[0].Rep.Point = nil }},
		{"mixed dims", func(d *LocalDelta) { d.Added[1].Rep.Point = geom.Point{1, 2, 3} }},
		{"bad rep eps", func(d *LocalDelta) { d.Added[0].Rep.Eps = -1 }},
		{"noise rep", func(d *LocalDelta) { d.Added[0].Rep.LocalCluster = cluster.Noise }},
	}
	for _, tc := range cases {
		d := deltaFixture()
		tc.mutate(d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func randomLocalModel(rng *rand.Rand, siteID string, nClusters int) *LocalModel {
	m := &LocalModel{
		SiteID:      siteID,
		Kind:        RepScor,
		EpsLocal:    0.5,
		MinPts:      4,
		NumClusters: nClusters,
	}
	for c := 0; c < nClusters; c++ {
		for r := 0; r < 2+rng.Intn(5); r++ {
			m.Reps = append(m.Reps, Representative{
				Point:        geom.Point{rng.NormFloat64(), rng.NormFloat64()},
				Eps:          0.1 + rng.Float64(),
				LocalCluster: cluster.ID(c),
			})
			m.NumObjects++
		}
	}
	return m
}

// mutateModel evolves a model the way a sliding window does: drop some
// representatives, add some, keep the rest byte-identical.
func mutateModel(rng *rand.Rand, m *LocalModel) *LocalModel {
	next := &LocalModel{
		SiteID:      m.SiteID,
		Kind:        m.Kind,
		EpsLocal:    m.EpsLocal,
		MinPts:      m.MinPts,
		NumClusters: m.NumClusters,
	}
	for _, r := range m.Reps {
		if rng.Float64() < 0.75 {
			next.Reps = append(next.Reps, r)
		}
	}
	for i := 0; i < rng.Intn(6); i++ {
		next.Reps = append(next.Reps, Representative{
			Point:        geom.Point{rng.NormFloat64(), rng.NormFloat64()},
			Eps:          0.1 + rng.Float64(),
			LocalCluster: cluster.ID(rng.Intn(m.NumClusters + 1)),
		})
	}
	next.NumObjects = len(next.Reps) * 3
	return next
}

// modelMultiset compares models as multisets of representatives (the folder
// materializes in id order, not the site's order).
func modelMultiset(m *LocalModel) map[string]int {
	out := make(map[string]int, len(m.Reps))
	for _, r := range m.Reps {
		out[repIdentity(r, 0)]++
	}
	return out
}

// Property: for any chain of model versions, folding the tracker's deltas
// reproduces each version exactly (as a representative multiset plus
// header), and over-the-wire encoding round-trips each delta.
func TestTrackerFolderDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		tracker := NewDeltaTracker()
		folder := NewDeltaFolder()
		m := randomLocalModel(rng, "site-x", 2+rng.Intn(3))
		for step := 0; step < 20; step++ {
			p := tracker.Delta(m)
			d := p.Delta
			if err := d.Validate(); err != nil {
				t.Fatalf("trial %d step %d: derived delta invalid: %v", trial, step, err)
			}
			if step == 0 && !d.Snapshot() {
				t.Fatal("first delta is not a snapshot")
			}
			b, err := d.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			var wire LocalDelta
			if err := wire.UnmarshalBinary(b); err != nil {
				t.Fatal(err)
			}
			if err := folder.Apply(&wire); err != nil {
				t.Fatalf("trial %d step %d: apply: %v", trial, step, err)
			}
			tracker.Commit(p)
			got := folder.Model()
			if err := got.Validate(); err != nil {
				t.Fatalf("trial %d step %d: materialized model invalid: %v", trial, step, err)
			}
			if !reflect.DeepEqual(modelMultiset(got), modelMultiset(m)) {
				t.Fatalf("trial %d step %d: folded reps diverged from sent model", trial, step)
			}
			if got.SiteID != m.SiteID || got.Kind != m.Kind ||
				got.NumObjects != m.NumObjects || got.NumClusters != m.NumClusters {
				t.Fatalf("trial %d step %d: folded header diverged: %+v vs %+v", trial, step, got, m)
			}
			m = mutateModel(rng, m)
		}
	}
}

// An unchanged model must produce an empty delta — that is the whole point
// of streaming deltas.
func TestTrackerUnchangedModelEmptyDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tracker := NewDeltaTracker()
	m := randomLocalModel(rng, "site-x", 3)
	tracker.Commit(tracker.Delta(m))
	d := tracker.Delta(m).Delta
	if len(d.Added) != 0 || len(d.Removed) != 0 {
		t.Fatalf("unchanged model produced %d additions, %d removals", len(d.Added), len(d.Removed))
	}
	if full, delta := m.EncodedSize(), d.EncodedSize(); delta*4 > full {
		t.Fatalf("empty delta is %d bytes vs %d for the model — not worth streaming", delta, full)
	}
}

// Duplicate representatives must survive the diff as a multiset.
func TestTrackerDuplicateReps(t *testing.T) {
	rep := Representative{Point: geom.Point{1, 1}, Eps: 0.2, LocalCluster: 0}
	m := &LocalModel{SiteID: "s", Kind: RepScor, EpsLocal: 0.5, MinPts: 3,
		Reps: []Representative{rep, rep, rep}, NumObjects: 3, NumClusters: 1}
	tracker := NewDeltaTracker()
	folder := NewDeltaFolder()
	p := tracker.Delta(m)
	if len(p.Delta.Added) != 3 {
		t.Fatalf("3 duplicate reps encoded as %d additions", len(p.Delta.Added))
	}
	if err := folder.Apply(p.Delta); err != nil {
		t.Fatal(err)
	}
	tracker.Commit(p)
	m2 := &LocalModel{SiteID: "s", Kind: RepScor, EpsLocal: 0.5, MinPts: 3,
		Reps: []Representative{rep, rep}, NumObjects: 2, NumClusters: 1}
	p2 := tracker.Delta(m2)
	if len(p2.Delta.Added) != 0 || len(p2.Delta.Removed) != 1 {
		t.Fatalf("dropping one duplicate: %d added, %d removed", len(p2.Delta.Added), len(p2.Delta.Removed))
	}
	if err := folder.Apply(p2.Delta); err != nil {
		t.Fatal(err)
	}
	if got := len(folder.Model().Reps); got != 2 {
		t.Fatalf("folded %d reps, want 2", got)
	}
}

func TestFolderBaseMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tracker := NewDeltaTracker()
	folder := NewDeltaFolder()
	m := randomLocalModel(rng, "site-x", 2)
	p := tracker.Delta(m)
	if err := folder.Apply(p.Delta); err != nil {
		t.Fatal(err)
	}
	tracker.Commit(p)
	// A delta against a base the folder never saw must be refused.
	stale := tracker.Delta(mutateModel(rng, m))
	stale.Delta.BaseSeq = 17
	stale.Delta.Seq = 18
	if err := folder.Apply(stale.Delta); !errors.Is(err, ErrDeltaBase) {
		t.Fatalf("stale base accepted: %v", err)
	}
	if folder.Seq() != 1 {
		t.Fatalf("failed apply moved the folder to seq %d", folder.Seq())
	}
	// Recovery: reset the tracker, snapshot, fold.
	tracker.Reset()
	snap := tracker.Delta(m)
	if !snap.Delta.Snapshot() {
		t.Fatal("post-reset delta is not a snapshot")
	}
	if err := folder.Apply(snap.Delta); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(modelMultiset(folder.Model()), modelMultiset(m)) {
		t.Fatal("snapshot recovery diverged")
	}
}

func TestFolderEmptyRejectsNonSnapshot(t *testing.T) {
	folder := NewDeltaFolder()
	d := deltaFixture()
	if err := folder.Apply(d); !errors.Is(err, ErrDeltaBase) {
		t.Fatalf("empty folder accepted chained delta: %v", err)
	}
	if folder.Model() != nil {
		t.Fatal("empty folder materialized a model")
	}
}

// FuzzLocalDeltaUnmarshal asserts no byte sequence can panic the delta
// decoder or make it allocate unboundedly, and that accepted inputs
// re-marshal byte-identically (the encoding is canonical).
func FuzzLocalDeltaUnmarshal(f *testing.F) {
	seed, _ := deltaFixture().MarshalBinary()
	f.Add(seed)
	f.Add(seed[:len(seed)/2]) // truncated
	f.Add([]byte{})
	f.Add([]byte{tagLocalDelta, wireVersion})
	// Huge removal count with no bytes behind it.
	f.Add(append(append([]byte{tagLocalDelta, wireVersion}, seed[2:44]...), 0xFF, 0xFF, 0xFF, 0x7F))

	f.Fuzz(func(t *testing.T, data []byte) {
		var d LocalDelta
		if err := d.UnmarshalBinary(data); err != nil {
			return
		}
		if len(d.Added)+len(d.Removed) > len(data) {
			t.Fatalf("decoded %d entries from %d bytes", len(d.Added)+len(d.Removed), len(data))
		}
		out, err := d.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of accepted delta: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("delta did not round-trip canonically")
		}
	})
}
