package model

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/geom"
)

func sampleLocal(rng *rand.Rand, siteID string, nReps int) *LocalModel {
	m := &LocalModel{
		SiteID:      siteID,
		Kind:        RepScor,
		EpsLocal:    0.5,
		MinPts:      5,
		NumObjects:  1000,
		NumClusters: 3,
	}
	for i := 0; i < nReps; i++ {
		m.Reps = append(m.Reps, Representative{
			Point:        geom.Point{rng.NormFloat64(), rng.NormFloat64()},
			Eps:          0.5 + rng.Float64()*0.5,
			LocalCluster: cluster.ID(i % 3),
		})
	}
	return m
}

func sampleGlobal(rng *rand.Rand, nReps int) *GlobalModel {
	g := &GlobalModel{EpsGlobal: 1.0, MinPtsGlobal: 2}
	ids := map[cluster.ID]bool{}
	for i := 0; i < nReps; i++ {
		id := cluster.ID(i % 4)
		ids[id] = true
		g.Reps = append(g.Reps, GlobalRepresentative{
			Representative: Representative{
				Point:        geom.Point{rng.NormFloat64(), rng.NormFloat64()},
				Eps:          1,
				LocalCluster: 0,
			},
			SiteID:        "site-1",
			GlobalCluster: id,
		})
	}
	g.NumClusters = len(ids)
	return g
}

func TestLocalModelValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := sampleLocal(rng, "s1", 5)
	if err := m.Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*LocalModel)
	}{
		{"empty site id", func(m *LocalModel) { m.SiteID = "" }},
		{"bad kind", func(m *LocalModel) { m.Kind = "nope" }},
		{"bad eps", func(m *LocalModel) { m.EpsLocal = 0 }},
		{"empty point", func(m *LocalModel) { m.Reps[0].Point = nil }},
		{"nan point", func(m *LocalModel) { m.Reps[0].Point = geom.Point{0, nan()} }},
		{"dim mismatch", func(m *LocalModel) { m.Reps[1].Point = geom.Point{1} }},
		{"zero rep eps", func(m *LocalModel) { m.Reps[2].Eps = 0 }},
		{"noise cluster id", func(m *LocalModel) { m.Reps[3].LocalCluster = cluster.Noise }},
	}
	for _, c := range cases {
		mm := sampleLocal(rng, "s1", 5)
		c.mutate(mm)
		if err := mm.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

func TestGlobalModelValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := sampleGlobal(rng, 8)
	if err := g.Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	g.Reps[0].GlobalCluster = cluster.Noise
	if err := g.Validate(); err == nil {
		t.Error("noise global rep accepted")
	}
	g = sampleGlobal(rng, 8)
	g.NumClusters = 99
	if err := g.Validate(); err == nil {
		t.Error("wrong NumClusters accepted")
	}
}

func TestMaxEps(t *testing.T) {
	m := &LocalModel{Reps: []Representative{{Eps: 0.5}, {Eps: 1.5}, {Eps: 1.0}}}
	if got := m.MaxEps(); got != 1.5 {
		t.Errorf("MaxEps = %v, want 1.5", got)
	}
	if got := (&LocalModel{}).MaxEps(); got != 0 {
		t.Errorf("MaxEps of empty = %v", got)
	}
}

func TestLocalModelRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 7, 100} {
		m := sampleLocal(rng, "site-α/β", n) // non-ASCII site id
		b, err := m.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var got LocalModel
		if err := got.UnmarshalBinary(b); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !reflect.DeepEqual(m.Reps, got.Reps) && !(len(m.Reps) == 0 && len(got.Reps) == 0) {
			t.Fatalf("n=%d: reps differ", n)
		}
		if got.SiteID != m.SiteID || got.Kind != m.Kind || got.EpsLocal != m.EpsLocal ||
			got.MinPts != m.MinPts || got.NumObjects != m.NumObjects ||
			got.NumClusters != m.NumClusters {
			t.Fatalf("n=%d: header differs: %+v vs %+v", n, got, m)
		}
	}
}

func TestGlobalModelRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{0, 1, 9, 64} {
		g := sampleGlobal(rng, n)
		b, err := g.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var got GlobalModel
		if err := got.UnmarshalBinary(b); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !reflect.DeepEqual(g.Reps, got.Reps) && !(len(g.Reps) == 0 && len(got.Reps) == 0) {
			t.Fatalf("n=%d: reps differ", n)
		}
		if got.EpsGlobal != g.EpsGlobal || got.MinPtsGlobal != g.MinPtsGlobal ||
			got.NumClusters != g.NumClusters {
			t.Fatalf("n=%d: header differs", n)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	var m LocalModel
	if err := m.UnmarshalBinary(nil); err == nil {
		t.Error("empty frame accepted")
	}
	if err := m.UnmarshalBinary([]byte{0xFF, 0x01}); err == nil {
		t.Error("wrong tag accepted")
	}
	if err := m.UnmarshalBinary([]byte{tagLocalModel, 99}); err == nil {
		t.Error("wrong version accepted")
	}
	// Truncation at every prefix length of a valid frame must error, never
	// panic.
	rng := rand.New(rand.NewSource(5))
	full, err := sampleLocal(rng, "s", 3).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(full); cut++ {
		var mm LocalModel
		if err := mm.UnmarshalBinary(full[:cut]); err == nil {
			t.Fatalf("truncated frame of %d bytes accepted", cut)
		}
	}
	// Trailing garbage must be rejected too.
	var mm LocalModel
	if err := mm.UnmarshalBinary(append(append([]byte{}, full...), 0x00)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestUnmarshalRejectsHugeCounts(t *testing.T) {
	// Craft a frame claiming 2^31 representatives.
	var w wireWriter
	w.u8(tagLocalModel)
	w.u8(wireVersion)
	w.str("s")
	w.str(string(RepScor))
	w.f64(1)
	w.i32(5)
	w.i32(10)
	w.i32(1)
	w.u32(1 << 31)
	var m LocalModel
	if err := m.UnmarshalBinary(w.buf); err == nil {
		t.Fatal("huge rep count accepted")
	}
	if !strings.Contains(func() string {
		err := m.UnmarshalBinary(w.buf)
		return err.Error()
	}(), "") {
		t.Fatal("unreachable")
	}
}

func TestGlobalUnmarshalTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	full, err := sampleGlobal(rng, 3).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(full); cut++ {
		var g GlobalModel
		if err := g.UnmarshalBinary(full[:cut]); err == nil {
			t.Fatalf("truncated global frame of %d bytes accepted", cut)
		}
	}
}

func TestCompressionVersusRawPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// 1000 objects represented by 50 reps: the binary model must be far
	// smaller than shipping the raw points.
	m := sampleLocal(rng, "s1", 50)
	enc := m.EncodedSize()
	raw := m.RawPointsSize(2)
	if enc*4 > raw {
		t.Fatalf("model %dB not much smaller than raw %dB", enc, raw)
	}
	// And the binary encoding must beat JSON.
	if jsonSize := m.JSONSize(); jsonSize <= enc {
		t.Fatalf("JSON (%dB) unexpectedly smaller than binary (%dB)", jsonSize, enc)
	}
}

func BenchmarkLocalModelMarshal(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := sampleLocal(rng, "s1", 500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocalModelUnmarshal(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data, _ := sampleLocal(rng, "s1", 500).MarshalBinary()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var m LocalModel
		if err := m.UnmarshalBinary(data); err != nil {
			b.Fatal(err)
		}
	}
}
