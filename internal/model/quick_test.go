package model

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/geom"
)

// genLocal is a quick.Generator producing structurally valid local models
// of random shape (dimension, representative count, site id).
type genLocal struct{ m LocalModel }

func (genLocal) Generate(rng *rand.Rand, size int) reflect.Value {
	dim := 1 + rng.Intn(4)
	kinds := []Kind{RepScor, RepKMeans}
	m := LocalModel{
		SiteID:      randASCII(rng, 1+rng.Intn(12)),
		Kind:        kinds[rng.Intn(2)],
		EpsLocal:    rng.Float64() + 0.01,
		MinPts:      1 + rng.Intn(10),
		NumObjects:  rng.Intn(10000),
		NumClusters: rng.Intn(20),
	}
	for i := 0; i < rng.Intn(size+1); i++ {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.NormFloat64() * 100
		}
		m.Reps = append(m.Reps, Representative{
			Point:        p,
			Eps:          rng.Float64() + 1e-9,
			LocalCluster: cluster.ID(rng.Intn(20)),
		})
	}
	return reflect.ValueOf(genLocal{m})
}

func randASCII(rng *rand.Rand, n int) string {
	const chars = "abcdefghijklmnopqrstuvwxyz0123456789-_"
	b := make([]byte, n)
	for i := range b {
		b[i] = chars[rng.Intn(len(chars))]
	}
	return string(b)
}

// Property: binary encoding round-trips every structurally valid local
// model exactly.
func TestQuickLocalModelRoundTrip(t *testing.T) {
	f := func(g genLocal) bool {
		buf, err := g.m.MarshalBinary()
		if err != nil {
			return false
		}
		var got LocalModel
		if err := got.UnmarshalBinary(buf); err != nil {
			return false
		}
		if got.SiteID != g.m.SiteID || got.Kind != g.m.Kind ||
			got.EpsLocal != g.m.EpsLocal || got.MinPts != g.m.MinPts ||
			got.NumObjects != g.m.NumObjects || got.NumClusters != g.m.NumClusters {
			return false
		}
		if len(got.Reps) != len(g.m.Reps) {
			return false
		}
		for i := range got.Reps {
			if !reflect.DeepEqual(got.Reps[i], g.m.Reps[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: decoding never panics and never succeeds on frames with
// mutated length prefixes — flip one byte anywhere and the decoder either
// errors or yields a model that re-encodes to a same-length frame
// (distinguishing corruption detection from silent misparses that change
// the structure size).
func TestQuickLocalModelFuzzish(t *testing.T) {
	f := func(g genLocal, pos uint16, bit uint8) bool {
		buf, err := g.m.MarshalBinary()
		if err != nil || len(buf) == 0 {
			return err == nil
		}
		i := int(pos) % len(buf)
		mutated := append([]byte(nil), buf...)
		mutated[i] ^= 1 << (bit % 8)
		var got LocalModel
		defer func() {
			if recover() != nil {
				t.Fatalf("decoder panicked on mutated frame")
			}
		}()
		if err := got.UnmarshalBinary(mutated); err != nil {
			return true // rejected: fine
		}
		// Accepted: the mutation hit a value byte, not structure. The model
		// must re-encode to exactly the same length.
		re, err := got.MarshalBinary()
		return err == nil && len(re) == len(mutated)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: EncodedSize is monotone in the representative count.
func TestQuickEncodedSizeMonotone(t *testing.T) {
	f := func(g genLocal) bool {
		if len(g.m.Reps) == 0 {
			return true
		}
		full := g.m.EncodedSize()
		truncated := g.m
		truncated.Reps = truncated.Reps[:len(truncated.Reps)/2]
		return truncated.EncodedSize() <= full
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
