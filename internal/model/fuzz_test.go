package model

import (
	"bytes"
	"testing"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/geom"
)

func seedLocal() []byte {
	m := &LocalModel{
		SiteID:      "fuzz-site",
		Kind:        RepScor,
		EpsLocal:    0.5,
		MinPts:      4,
		NumObjects:  42,
		NumClusters: 2,
		Reps: []Representative{
			{Point: geom.Point{1, 2}, Eps: 0.4, LocalCluster: 0},
			{Point: geom.Point{-3, 0.5}, Eps: 0.3, LocalCluster: 1},
		},
	}
	b, _ := m.MarshalBinary()
	return b
}

func seedGlobal() []byte {
	g := &GlobalModel{
		EpsGlobal:    0.6,
		MinPtsGlobal: 2,
		NumClusters:  1,
		Reps: []GlobalRepresentative{
			{
				Representative: Representative{Point: geom.Point{1, 2}, Eps: 0.4, LocalCluster: 0},
				SiteID:         "fuzz-site",
				GlobalCluster:  cluster.ID(0),
			},
		},
	}
	b, _ := g.MarshalBinary()
	return b
}

// FuzzLocalModelUnmarshal asserts no byte sequence can panic the local
// model decoder or make it allocate unboundedly, and that accepted inputs
// re-marshal byte-identically (the encoding is canonical).
func FuzzLocalModelUnmarshal(f *testing.F) {
	seed := seedLocal()
	f.Add(seed)
	f.Add(seed[:len(seed)/2]) // truncated
	f.Add([]byte{})
	f.Add([]byte{tagLocalModel, wireVersion})
	// Huge representative count with no bytes behind it.
	f.Add(append(append([]byte{tagLocalModel, wireVersion}, seed[2:42]...), 0xFF, 0xFF, 0xFF, 0x7F))

	f.Fuzz(func(t *testing.T, data []byte) {
		var m LocalModel
		if err := m.UnmarshalBinary(data); err != nil {
			return
		}
		if len(m.Reps) > len(data) {
			t.Fatalf("decoded %d representatives from %d bytes", len(m.Reps), len(data))
		}
		out, err := m.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of accepted model: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("local model did not round-trip canonically")
		}
	})
}

// FuzzGlobalModelUnmarshal is FuzzLocalModelUnmarshal for the global model.
func FuzzGlobalModelUnmarshal(f *testing.F) {
	seed := seedGlobal()
	f.Add(seed)
	f.Add(seed[:len(seed)-3])
	f.Add([]byte{})
	f.Add([]byte{tagGlobalModel, wireVersion})
	f.Add(append(append([]byte{tagGlobalModel, wireVersion}, seed[2:20]...), 0xFF, 0xFF, 0xFF, 0x7F))

	f.Fuzz(func(t *testing.T, data []byte) {
		var g GlobalModel
		if err := g.UnmarshalBinary(data); err != nil {
			return
		}
		if len(g.Reps) > len(data) {
			t.Fatalf("decoded %d representatives from %d bytes", len(g.Reps), len(data))
		}
		out, err := g.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of accepted model: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("global model did not round-trip canonically")
		}
	})
}
