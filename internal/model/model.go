// Package model defines the information DBDC exchanges between sites and
// server: the local model (Section 5 of the paper — representatives with
// their specific ε-ranges) and the global model (Section 6 — the same
// representatives annotated with global cluster ids). The package also
// provides the compact binary wire encoding used by the transport layer;
// its size is what makes DBDC's transmission cost "minimal, as the
// representatives are only a fraction of the original data".
package model

import (
	"fmt"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/geom"
)

// Kind names a local-model construction strategy.
type Kind string

// The two local models of Section 5.
const (
	// RepScor represents each cluster by a complete set of specific core
	// points with specific ε-ranges (Section 5.1).
	RepScor Kind = "rep-scor"
	// RepKMeans refines the specific core points of each cluster with
	// k-means and ships the centroids instead (Section 5.2).
	RepKMeans Kind = "rep-kmeans"
)

// Kinds lists the available local model kinds.
func Kinds() []Kind { return []Kind{RepScor, RepKMeans} }

// Representative is one element of a local model: a point r and the
// ε_r-range describing the area it stands for. For RepScor the point is an
// actual database object; for RepKMeans it is a k-means centroid.
type Representative struct {
	Point geom.Point `json:"point"`
	// Eps is the specific ε-range ε_r: every object of the represented
	// local cluster within distance Eps of Point is represented by it.
	Eps float64 `json:"eps"`
	// LocalCluster is the id of the local cluster this representative
	// describes, unique within its site.
	LocalCluster cluster.ID `json:"localCluster"`
}

// LocalModel is the aggregated information one site sends to the server.
type LocalModel struct {
	// SiteID identifies the originating site.
	SiteID string `json:"siteID"`
	// Kind records which construction produced the representatives.
	Kind Kind `json:"kind"`
	// EpsLocal and MinPts are the site's DBSCAN parameters; the server uses
	// EpsLocal when deriving a default Eps_global.
	EpsLocal float64 `json:"epsLocal"`
	MinPts   int     `json:"minPts"`
	// Reps are the representatives of all local clusters.
	Reps []Representative `json:"reps"`
	// NumObjects is the cardinality of the site's data set (reported for
	// compression statistics, not needed by the algorithm).
	NumObjects int `json:"numObjects"`
	// NumClusters is the number of local clusters found.
	NumClusters int `json:"numClusters"`
}

// Validate checks structural soundness of a received local model; the
// server applies it to every incoming model before use.
func (m *LocalModel) Validate() error {
	if m.SiteID == "" {
		return fmt.Errorf("model: local model without site id")
	}
	if m.Kind != RepScor && m.Kind != RepKMeans {
		return fmt.Errorf("model: unknown model kind %q", m.Kind)
	}
	if m.EpsLocal <= 0 {
		return fmt.Errorf("model: non-positive EpsLocal %v", m.EpsLocal)
	}
	var dim int
	for i, r := range m.Reps {
		if len(r.Point) == 0 {
			return fmt.Errorf("model: representative %d has no coordinates", i)
		}
		if !r.Point.IsFinite() {
			return fmt.Errorf("model: representative %d has non-finite coordinates", i)
		}
		if dim == 0 {
			dim = r.Point.Dim()
		} else if r.Point.Dim() != dim {
			return fmt.Errorf("model: representative %d has dimension %d, want %d",
				i, r.Point.Dim(), dim)
		}
		if r.Eps <= 0 {
			return fmt.Errorf("model: representative %d has non-positive eps %v", i, r.Eps)
		}
		if r.LocalCluster < 0 {
			return fmt.Errorf("model: representative %d has invalid local cluster %d",
				i, r.LocalCluster)
		}
	}
	return nil
}

// MaxEps returns the largest specific ε-range of the model, the quantity
// the server's default Eps_global is derived from. Zero for empty models.
func (m *LocalModel) MaxEps() float64 {
	var max float64
	for _, r := range m.Reps {
		if r.Eps > max {
			max = r.Eps
		}
	}
	return max
}

// GlobalRepresentative is a local representative after global clustering:
// it carries its origin site and the global cluster it was assigned to.
type GlobalRepresentative struct {
	Representative
	SiteID string `json:"siteID"`
	// GlobalCluster is the id assigned by the server's clustering of all
	// representatives. Never noise: a representative that merges with no
	// other forms a singleton global cluster of its own.
	GlobalCluster cluster.ID `json:"globalCluster"`
}

// GlobalModel is what the server broadcasts back to every site.
//
// The all-noise round — every site found only noise, so there are no
// representatives to cluster — is encoded by the documented sentinel
// Reps == nil (empty), NumClusters == 0, EpsGlobal == 0: no server-side
// clustering happened, so no radius is fabricated. Empty() reports it and
// Validate accepts it; relabeling against the sentinel keeps every object
// noise.
type GlobalModel struct {
	// EpsGlobal and MinPtsGlobal are the parameters the server used.
	// EpsGlobal is 0 exactly when the model is the empty sentinel (no
	// representatives, no clustering performed).
	EpsGlobal    float64 `json:"epsGlobal"`
	MinPtsGlobal int     `json:"minPtsGlobal"`
	// Reps are all representatives of all sites with global cluster ids.
	Reps []GlobalRepresentative `json:"reps"`
	// NumClusters is the number of global clusters.
	NumClusters int `json:"numClusters"`
}

// Empty reports whether the model is the all-noise sentinel: no
// representatives arrived, so no global clustering was performed and no
// Eps_global exists.
func (g *GlobalModel) Empty() bool { return len(g.Reps) == 0 }

// Validate checks structural soundness of a received global model. The
// empty sentinel (no representatives, NumClusters 0, EpsGlobal 0) is valid;
// any non-empty model must carry a positive EpsGlobal.
func (g *GlobalModel) Validate() error {
	if g.EpsGlobal < 0 {
		return fmt.Errorf("model: negative EpsGlobal %v", g.EpsGlobal)
	}
	if g.EpsGlobal == 0 && len(g.Reps) > 0 {
		return fmt.Errorf("model: EpsGlobal 0 with %d representatives (the empty sentinel carries none)", len(g.Reps))
	}
	if g.MinPtsGlobal < 1 {
		return fmt.Errorf("model: MinPtsGlobal %d < 1", g.MinPtsGlobal)
	}
	seen := make(map[cluster.ID]bool)
	for i, r := range g.Reps {
		if !r.Point.IsFinite() || len(r.Point) == 0 {
			return fmt.Errorf("model: global representative %d has bad coordinates", i)
		}
		if r.Eps <= 0 {
			return fmt.Errorf("model: global representative %d has non-positive eps", i)
		}
		if r.GlobalCluster < 0 {
			return fmt.Errorf("model: global representative %d labelled noise", i)
		}
		seen[r.GlobalCluster] = true
	}
	if len(seen) != g.NumClusters {
		return fmt.Errorf("model: NumClusters %d but %d distinct ids", g.NumClusters, len(seen))
	}
	return nil
}
