package model

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
)

// A LocalDelta is the incremental form of a LocalModel: instead of
// re-shipping every representative each time the site's clustering changes
// "considerably", a streaming site names the representatives that vanished
// since the last transmitted state and ships only the new ones. Each
// representative carries a site-assigned uint32 id that is stable for its
// lifetime, so removals are 4 bytes instead of a full point.
//
// Deltas form a chain: a delta with BaseSeq b transforms the state produced
// by the delta with Seq b into the state Seq. BaseSeq 0 is the snapshot
// case — the receiver discards everything it holds for the site and starts
// over from the Added list alone — which doubles as the negotiated
// "full model" upload and as the recovery move after a sequence mismatch.
type LocalDelta struct {
	// SiteID, Kind, EpsLocal and MinPts mirror the LocalModel header; the
	// receiver materializes them into the folded model.
	SiteID   string  `json:"siteID"`
	Kind     Kind    `json:"kind"`
	EpsLocal float64 `json:"epsLocal"`
	MinPts   int     `json:"minPts"`
	// BaseSeq is the sequence number of the state this delta applies to;
	// 0 means snapshot (no base, Removed must be empty).
	BaseSeq uint64 `json:"baseSeq"`
	// Seq is the sequence number of the state after applying the delta.
	// Always > BaseSeq and ≥ 1.
	Seq uint64 `json:"seq"`
	// NumObjects and NumClusters describe the site's current window, like
	// the LocalModel fields of the same name.
	NumObjects  int `json:"numObjects"`
	NumClusters int `json:"numClusters"`
	// Removed lists ids of representatives absent from the new state.
	Removed []uint32 `json:"removed"`
	// Added lists representatives new in this state, with their ids.
	Added []DeltaRep `json:"added"`
}

// DeltaRep is one added representative together with its site-assigned id.
type DeltaRep struct {
	ID  uint32         `json:"id"`
	Rep Representative `json:"rep"`
}

// Snapshot reports whether the delta replaces all previous state for the
// site rather than amending it.
func (d *LocalDelta) Snapshot() bool { return d.BaseSeq == 0 }

// Validate checks structural soundness of a received delta; the server
// applies it before folding.
func (d *LocalDelta) Validate() error {
	if d.SiteID == "" {
		return fmt.Errorf("model: delta without site id")
	}
	if d.Kind != RepScor && d.Kind != RepKMeans {
		return fmt.Errorf("model: unknown model kind %q", d.Kind)
	}
	if d.EpsLocal <= 0 {
		return fmt.Errorf("model: non-positive EpsLocal %v", d.EpsLocal)
	}
	if d.Seq == 0 {
		return fmt.Errorf("model: delta with sequence number 0")
	}
	if d.BaseSeq >= d.Seq {
		return fmt.Errorf("model: delta base %d not before sequence %d", d.BaseSeq, d.Seq)
	}
	if d.BaseSeq == 0 && len(d.Removed) > 0 {
		return fmt.Errorf("model: snapshot delta removes %d representatives", len(d.Removed))
	}
	seenRemoved := make(map[uint32]bool, len(d.Removed))
	for _, id := range d.Removed {
		if seenRemoved[id] {
			return fmt.Errorf("model: representative %d removed twice", id)
		}
		seenRemoved[id] = true
	}
	var dim int
	seenAdded := make(map[uint32]bool, len(d.Added))
	for i, a := range d.Added {
		if seenAdded[a.ID] {
			return fmt.Errorf("model: representative id %d added twice", a.ID)
		}
		seenAdded[a.ID] = true
		r := a.Rep
		if len(r.Point) == 0 {
			return fmt.Errorf("model: added representative %d has no coordinates", i)
		}
		if !r.Point.IsFinite() {
			return fmt.Errorf("model: added representative %d has non-finite coordinates", i)
		}
		if dim == 0 {
			dim = r.Point.Dim()
		} else if r.Point.Dim() != dim {
			return fmt.Errorf("model: added representative %d has dimension %d, want %d",
				i, r.Point.Dim(), dim)
		}
		if r.Eps <= 0 {
			return fmt.Errorf("model: added representative %d has non-positive eps %v", i, r.Eps)
		}
		if r.LocalCluster < 0 {
			return fmt.Errorf("model: added representative %d has invalid local cluster %d",
				i, r.LocalCluster)
		}
	}
	return nil
}

// tagLocalDelta extends the wire tag set of encode.go.
const tagLocalDelta byte = 0x44 // 'D'

func (w *wireWriter) u64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

func (r *wireReader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.pos:])
	r.pos += 8
	return v
}

// wireSize returns the exact encoded size of the delta in bytes.
func (d *LocalDelta) wireSize() int {
	size := 2 + 4 + len(d.SiteID) + 4 + len(d.Kind) + 8 + 4 + 8 + 8 + 4 + 4
	size += 4 + 4*len(d.Removed)
	size += 4
	for _, a := range d.Added {
		size += 4 + wireRepSize(a.Rep)
	}
	return size
}

// MarshalBinary encodes the delta in the compact wire format, one
// allocation total like the model encoders.
func (d *LocalDelta) MarshalBinary() ([]byte, error) {
	w := newWireWriter(d.wireSize())
	w.u8(tagLocalDelta)
	w.u8(wireVersion)
	w.str(d.SiteID)
	w.str(string(d.Kind))
	w.f64(d.EpsLocal)
	w.i32(int32(d.MinPts))
	w.u64(d.BaseSeq)
	w.u64(d.Seq)
	w.i32(int32(d.NumObjects))
	w.i32(int32(d.NumClusters))
	w.u32(uint32(len(d.Removed)))
	for _, id := range d.Removed {
		w.u32(id)
	}
	w.u32(uint32(len(d.Added)))
	for _, a := range d.Added {
		w.u32(a.ID)
		writeRep(&w, a.Rep)
	}
	return w.buf, nil
}

// UnmarshalBinary decodes a delta, rejecting trailing bytes.
func (d *LocalDelta) UnmarshalBinary(data []byte) error {
	n, err := d.UnmarshalBinaryPrefix(data)
	if err != nil {
		return err
	}
	if n != len(data) {
		return fmt.Errorf("model: %d trailing bytes after delta", len(data)-n)
	}
	return nil
}

// UnmarshalBinaryPrefix decodes a delta from the beginning of data and
// returns the number of bytes consumed; like the local model, the encoding
// is self-delimiting so the transport can append trailer sections.
func (d *LocalDelta) UnmarshalBinaryPrefix(data []byte) (int, error) {
	r := &wireReader{data: data}
	if tag := r.u8(); r.err == nil && tag != tagLocalDelta {
		return 0, fmt.Errorf("model: expected delta frame, got tag 0x%02x", tag)
	}
	if v := r.u8(); r.err == nil && v != wireVersion {
		return 0, fmt.Errorf("model: unsupported wire version %d", v)
	}
	d.SiteID = r.str(maxWireSiteID)
	d.Kind = Kind(r.str(maxWireSiteID))
	d.EpsLocal = r.f64()
	d.MinPts = int(r.i32())
	d.BaseSeq = r.u64()
	d.Seq = r.u64()
	d.NumObjects = int(r.i32())
	d.NumClusters = int(r.i32())
	nr := int(r.u32())
	if r.err == nil && nr > maxWireReps {
		r.fail("removal count %d exceeds limit", nr)
	}
	if r.err == nil && nr*4 > len(data)-r.pos {
		r.fail("removal count %d exceeds the %d remaining bytes", nr, len(data)-r.pos)
	}
	if r.err != nil {
		return 0, r.err
	}
	d.Removed = make([]uint32, 0, nr)
	for i := 0; i < nr && r.err == nil; i++ {
		d.Removed = append(d.Removed, r.u32())
	}
	na := int(r.u32())
	if r.err == nil && na > maxWireReps {
		r.fail("addition count %d exceeds limit", na)
	}
	if r.err == nil && na*(4+minWireRep) > len(data)-r.pos {
		r.fail("addition count %d exceeds the %d remaining bytes", na, len(data)-r.pos)
	}
	if r.err != nil {
		return 0, r.err
	}
	d.Added = make([]DeltaRep, 0, na)
	var flat []float64
	for i := 0; i < na && r.err == nil; i++ {
		id := r.u32()
		d.Added = append(d.Added, DeltaRep{ID: id, Rep: readRep(r, &flat)})
	}
	if r.err != nil {
		return 0, r.err
	}
	return r.pos, nil
}

// EncodedSize returns the wire size of the delta in bytes — the streaming
// uplink cost of one change round.
func (d *LocalDelta) EncodedSize() int {
	b, _ := d.MarshalBinary()
	return len(b)
}

// repIdentity returns the content identity of a representative used for
// delta diffing: coordinates, specific ε-range and local cluster id.
// Identical representatives are disambiguated by an occurrence index so a
// model with duplicates round-trips with the exact multiset.
func repIdentity(r Representative, occurrence int) string {
	b := make([]byte, 0, 4+8*len(r.Point)+8+4)
	b = binary.LittleEndian.AppendUint32(b, uint32(r.Point.Dim()))
	for _, c := range r.Point {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(c))
	}
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(r.Eps))
	b = binary.LittleEndian.AppendUint32(b, uint32(r.LocalCluster))
	return string(b) + "#" + strconv.Itoa(occurrence)
}

// DeltaTracker derives LocalDelta frames on the sending site by diffing
// each outgoing model against the last state the receiver acknowledged.
// Derivation and commit are split — Delta is pure, Commit applies a
// PendingDelta — so a failed upload leaves the tracker on the acknowledged
// state and the next attempt re-derives against it.
//
// Diffing is by representative content, so cluster ids must be stable
// across successive models (see ClusterMatcher): a batch re-clustering that
// renumbered every cluster would otherwise mark every representative
// changed and degenerate each delta into a snapshot.
type DeltaTracker struct {
	seq  uint64
	ids  map[string]uint32 // committed rep identity -> wire id
	next uint32
}

// NewDeltaTracker returns a tracker whose first delta is a snapshot.
func NewDeltaTracker() *DeltaTracker { return &DeltaTracker{} }

// Seq returns the last committed sequence number (0 before any commit).
func (t *DeltaTracker) Seq() uint64 { return t.seq }

// Reset discards the committed state, forcing the next delta to be a
// snapshot. Call it when the receiver reports a sequence mismatch.
func (t *DeltaTracker) Reset() {
	t.seq = 0
	t.ids = nil
	t.next = 0
}

// PendingDelta is a derived delta plus the tracker state it leads to;
// Commit installs that state once the receiver acknowledged the delta.
type PendingDelta struct {
	Delta *LocalDelta
	ids   map[string]uint32
	next  uint32
}

// Delta diffs m against the committed state. The returned pending delta is
// not applied until Commit; calling Delta again before Commit re-derives
// from the same base.
func (t *DeltaTracker) Delta(m *LocalModel) *PendingDelta {
	d := &LocalDelta{
		SiteID:      m.SiteID,
		Kind:        m.Kind,
		EpsLocal:    m.EpsLocal,
		MinPts:      m.MinPts,
		BaseSeq:     t.seq,
		Seq:         t.seq + 1,
		NumObjects:  m.NumObjects,
		NumClusters: m.NumClusters,
	}
	occ := make(map[string]int, len(m.Reps))
	ids := make(map[string]uint32, len(m.Reps))
	next := t.next
	for _, r := range m.Reps {
		base := repIdentity(r, 0)
		key := base
		if n := occ[base]; n > 0 {
			key = repIdentity(r, n)
		}
		occ[base]++
		if id, ok := t.ids[key]; ok {
			ids[key] = id
			continue
		}
		ids[key] = next
		d.Added = append(d.Added, DeltaRep{ID: next, Rep: r})
		next++
	}
	for key, id := range t.ids {
		if _, kept := ids[key]; !kept {
			d.Removed = append(d.Removed, id)
		}
	}
	sort.Slice(d.Removed, func(i, j int) bool { return d.Removed[i] < d.Removed[j] })
	return &PendingDelta{Delta: d, ids: ids, next: next}
}

// Commit installs the state of an acknowledged pending delta.
func (t *DeltaTracker) Commit(p *PendingDelta) {
	t.seq = p.Delta.Seq
	t.ids = p.ids
	t.next = p.next
}

// ErrDeltaBase is returned by DeltaFolder.Apply when a delta's BaseSeq does
// not match the folded state — frames were lost or reordered. The sender
// recovers by resetting its tracker and sending a snapshot.
var ErrDeltaBase = errors.New("model: delta base does not match folded state")

// DeltaFolder reassembles a site's LocalModel from its delta stream on the
// receiving side.
type DeltaFolder struct {
	seq         uint64
	reps        map[uint32]Representative
	siteID      string
	kind        Kind
	epsLocal    float64
	minPts      int
	numObjects  int
	numClusters int
}

// NewDeltaFolder returns an empty folder; it only accepts a snapshot until
// one has been applied.
func NewDeltaFolder() *DeltaFolder { return &DeltaFolder{} }

// Seq returns the sequence number of the folded state (0 when empty).
func (f *DeltaFolder) Seq() uint64 { return f.seq }

// Apply folds one validated delta. On any error the folded state is
// unchanged; ErrDeltaBase (wrapped) signals that the sender must snapshot.
func (f *DeltaFolder) Apply(d *LocalDelta) error {
	if d.BaseSeq != 0 {
		if f.reps == nil {
			return fmt.Errorf("%w: delta base %d against empty state", ErrDeltaBase, d.BaseSeq)
		}
		if d.BaseSeq != f.seq {
			return fmt.Errorf("%w: delta base %d, state is %d", ErrDeltaBase, d.BaseSeq, f.seq)
		}
	}
	// Verify before mutating so a bad delta cannot half-apply.
	removed := make(map[uint32]bool, len(d.Removed))
	if d.BaseSeq != 0 {
		for _, id := range d.Removed {
			if _, ok := f.reps[id]; !ok {
				return fmt.Errorf("%w: removal of unknown representative %d", ErrDeltaBase, id)
			}
			removed[id] = true
		}
		for _, a := range d.Added {
			if _, ok := f.reps[a.ID]; ok && !removed[a.ID] {
				return fmt.Errorf("%w: representative %d added twice", ErrDeltaBase, a.ID)
			}
		}
	}
	if d.BaseSeq == 0 {
		f.reps = make(map[uint32]Representative, len(d.Added))
	}
	for _, id := range d.Removed {
		delete(f.reps, id)
	}
	for _, a := range d.Added {
		f.reps[a.ID] = a.Rep
	}
	f.seq = d.Seq
	f.siteID = d.SiteID
	f.kind = d.Kind
	f.epsLocal = d.EpsLocal
	f.minPts = d.MinPts
	f.numObjects = d.NumObjects
	f.numClusters = d.NumClusters
	return nil
}

// Model materializes the folded state as a LocalModel, representatives in
// ascending id order (deterministic input for the global step). Nil before
// the first successful Apply.
func (f *DeltaFolder) Model() *LocalModel {
	if f.reps == nil {
		return nil
	}
	ids := make([]uint32, 0, len(f.reps))
	for id := range f.reps {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	reps := make([]Representative, 0, len(ids))
	for _, id := range ids {
		reps = append(reps, f.reps[id])
	}
	return &LocalModel{
		SiteID:      f.siteID,
		Kind:        f.kind,
		EpsLocal:    f.epsLocal,
		MinPts:      f.minPts,
		Reps:        reps,
		NumObjects:  f.numObjects,
		NumClusters: f.numClusters,
	}
}
