package model

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/geom"
)

// Wire format: a little-endian binary encoding. Every model starts with a
// one-byte type tag and a format version so the protocol can evolve.
const (
	wireVersion byte = 1

	tagLocalModel  byte = 0x4C // 'L'
	tagGlobalModel byte = 0x47 // 'G'
)

// limits guard against corrupt or malicious frames blowing up memory.
const (
	maxWireReps   = 10_000_000
	maxWireDim    = 1024
	maxWireSiteID = 4096

	// Minimum wire sizes of one representative (dim prefix + eps +
	// cluster id, with an empty point) and its global wrapper (site-id
	// length prefix + global cluster id on top). Used to bound slice
	// preallocation by the bytes actually present, so a tiny frame
	// advertising millions of representatives cannot allocate gigabytes
	// before the decode fails.
	minWireRep       = 4 + 8 + 4
	minWireGlobalRep = minWireRep + 4 + 4
)

// wireWriter appends the little-endian encoding to one flat byte slice. The
// marshal entry points presize it to the exact frame length, so encoding a
// model performs a single allocation regardless of the representative count
// (the old bytes.Buffer + binary.Write writer boxed every fixed-size write).
type wireWriter struct {
	buf []byte
}

func newWireWriter(size int) wireWriter { return wireWriter{buf: make([]byte, 0, size)} }

func (w *wireWriter) u8(v byte)    { w.buf = append(w.buf, v) }
func (w *wireWriter) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *wireWriter) i32(v int32)  { w.u32(uint32(v)) }
func (w *wireWriter) f64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}
func (w *wireWriter) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

type wireReader struct {
	data []byte
	pos  int
	err  error
}

func (r *wireReader) fail(format string, args ...interface{}) {
	if r.err == nil {
		r.err = fmt.Errorf("model: "+format, args...)
	}
}

func (r *wireReader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.pos+n > len(r.data) {
		r.fail("truncated frame: need %d bytes at offset %d of %d", n, r.pos, len(r.data))
		return false
	}
	return true
}

func (r *wireReader) u8() byte {
	if !r.need(1) {
		return 0
	}
	v := r.data[r.pos]
	r.pos++
	return v
}

func (r *wireReader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.pos:])
	r.pos += 4
	return v
}

func (r *wireReader) i32() int32 { return int32(r.u32()) }

func (r *wireReader) f64() float64 {
	if !r.need(8) {
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.pos:]))
	r.pos += 8
	return v
}

func (r *wireReader) str(limit int) string {
	n := int(r.u32())
	if r.err != nil {
		return ""
	}
	if n > limit {
		r.fail("string length %d exceeds limit %d", n, limit)
		return ""
	}
	if !r.need(n) {
		return ""
	}
	s := string(r.data[r.pos : r.pos+n])
	r.pos += n
	return s
}

// strInterned is str with deduplication through the given table: repeated
// strings (the handful of site ids shared by thousands of global
// representatives) decode to one shared allocation. The map lookup with a
// string(b) key expression does not allocate on a hit.
func (r *wireReader) strInterned(limit int, intern map[string]string) string {
	n := int(r.u32())
	if r.err != nil {
		return ""
	}
	if n > limit {
		r.fail("string length %d exceeds limit %d", n, limit)
		return ""
	}
	if !r.need(n) {
		return ""
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	if s, ok := intern[string(b)]; ok {
		return s
	}
	s := string(b)
	intern[s] = s
	return s
}

func writeRep(w *wireWriter, rep Representative) {
	w.u32(uint32(rep.Point.Dim()))
	for _, c := range rep.Point {
		w.f64(c)
	}
	w.f64(rep.Eps)
	w.i32(int32(rep.LocalCluster))
}

// wireRepSize returns the encoded size of one representative.
func wireRepSize(rep Representative) int { return 4 + 8*rep.Point.Dim() + 8 + 4 }

// scanRepCoords walks n representative encodings on a VALUE COPY of the
// reader (the caller's position is untouched) and returns the total
// coordinate count, so the decode loop can carve every rep's point out of
// one exactly-sized flat buffer — one coordinate allocation per model
// instead of one per representative. With global set it also skips the
// per-rep site id and global cluster id. ok is false when the frame is
// malformed; the caller then falls through to the per-field decode, which
// reports the error with its usual diagnostics.
func scanRepCoords(r wireReader, n int, global bool) (total int, ok bool) {
	for i := 0; i < n; i++ {
		dim := int(r.u32())
		if r.err != nil || dim > maxWireDim {
			return 0, false
		}
		if !r.need(dim*8 + 12) {
			return 0, false
		}
		r.pos += dim*8 + 12
		if global {
			sl := int(r.u32())
			if r.err != nil || sl > maxWireSiteID {
				return 0, false
			}
			if !r.need(sl + 4) {
				return 0, false
			}
			r.pos += sl + 4
		}
		total += dim
	}
	return total, true
}

// readRep decodes one representative. When *flat has spare capacity for the
// point it carves a capacity-clipped view out of it (the pre-scanned
// one-allocation path); otherwise it falls back to a per-rep allocation.
func readRep(r *wireReader, flat *[]float64) Representative {
	dim := int(r.u32())
	if r.err == nil && dim > maxWireDim {
		r.fail("dimension %d exceeds limit", dim)
	}
	if r.err != nil {
		return Representative{}
	}
	var p geom.Point
	if f := *flat; cap(f)-len(f) >= dim {
		base := len(f)
		f = f[: base+dim : cap(f)]
		*flat = f
		p = geom.Point(f[base : base+dim : base+dim])
	} else {
		p = make(geom.Point, dim)
	}
	for i := range p {
		p[i] = r.f64()
	}
	return Representative{
		Point:        p,
		Eps:          r.f64(),
		LocalCluster: cluster.ID(r.i32()),
	}
}

// wireSize returns the exact encoded size of the local model in bytes.
func (m *LocalModel) wireSize() int {
	size := 2 + 4 + len(m.SiteID) + 4 + len(m.Kind) + 8 + 4 + 4 + 4 + 4
	for _, rep := range m.Reps {
		size += wireRepSize(rep)
	}
	return size
}

// MarshalBinary encodes the local model in the compact wire format. The
// output buffer is presized exactly, so the encode is one allocation total.
func (m *LocalModel) MarshalBinary() ([]byte, error) {
	w := newWireWriter(m.wireSize())
	w.u8(tagLocalModel)
	w.u8(wireVersion)
	w.str(m.SiteID)
	w.str(string(m.Kind))
	w.f64(m.EpsLocal)
	w.i32(int32(m.MinPts))
	w.i32(int32(m.NumObjects))
	w.i32(int32(m.NumClusters))
	w.u32(uint32(len(m.Reps)))
	for _, rep := range m.Reps {
		writeRep(&w, rep)
	}
	return w.buf, nil
}

// UnmarshalBinary decodes a local model, validating limits as it reads.
func (m *LocalModel) UnmarshalBinary(data []byte) error {
	n, err := m.UnmarshalBinaryPrefix(data)
	if err != nil {
		return err
	}
	if n != len(data) {
		return fmt.Errorf("model: %d trailing bytes after local model", len(data)-n)
	}
	return nil
}

// UnmarshalBinaryPrefix decodes a local model from the beginning of data and
// returns the number of bytes consumed. Unlike UnmarshalBinary it tolerates
// trailing bytes, which is how the transport's sectioned upload frames
// (model bytes immediately followed by optional metric sections) locate the
// section area: the model encoding is self-delimiting.
func (m *LocalModel) UnmarshalBinaryPrefix(data []byte) (int, error) {
	r := &wireReader{data: data}
	if tag := r.u8(); r.err == nil && tag != tagLocalModel {
		return 0, fmt.Errorf("model: expected local model frame, got tag 0x%02x", tag)
	}
	if v := r.u8(); r.err == nil && v != wireVersion {
		return 0, fmt.Errorf("model: unsupported wire version %d", v)
	}
	m.SiteID = r.str(maxWireSiteID)
	m.Kind = Kind(r.str(maxWireSiteID))
	m.EpsLocal = r.f64()
	m.MinPts = int(r.i32())
	m.NumObjects = int(r.i32())
	m.NumClusters = int(r.i32())
	n := int(r.u32())
	if r.err == nil && n > maxWireReps {
		r.fail("representative count %d exceeds limit", n)
	}
	if r.err == nil && n*minWireRep > len(data)-r.pos {
		r.fail("representative count %d exceeds the %d remaining bytes", n, len(data)-r.pos)
	}
	if r.err != nil {
		return 0, r.err
	}
	// Pre-scan the rep encodings to size one flat coordinate buffer; every
	// rep's point is then a capacity-clipped view into it (≤ 1 coordinate
	// allocation per model instead of one per rep).
	var flat []float64
	if total, ok := scanRepCoords(*r, n, false); ok && total > 0 {
		flat = make([]float64, 0, total)
	}
	m.Reps = make([]Representative, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		m.Reps = append(m.Reps, readRep(r, &flat))
	}
	if r.err != nil {
		return 0, r.err
	}
	return r.pos, nil
}

// PeekLocalSiteID extracts the site id from an encoded local model without
// decoding the rest, best effort: it returns "" when data does not start
// like a local model. The transport uses it to name the site behind a
// partially corrupt upload in its round report.
func PeekLocalSiteID(data []byte) string {
	r := &wireReader{data: data}
	if tag := r.u8(); r.err != nil || tag != tagLocalModel {
		return ""
	}
	if v := r.u8(); r.err != nil || v != wireVersion {
		return ""
	}
	id := r.str(maxWireSiteID)
	if r.err != nil {
		return ""
	}
	return id
}

// wireSize returns the exact encoded size of the global model in bytes.
func (g *GlobalModel) wireSize() int {
	size := 2 + 8 + 4 + 4 + 4
	for _, rep := range g.Reps {
		size += wireRepSize(rep.Representative) + 4 + len(rep.SiteID) + 4
	}
	return size
}

// MarshalBinary encodes the global model in the compact wire format. The
// output buffer is presized exactly, so the encode is one allocation total.
func (g *GlobalModel) MarshalBinary() ([]byte, error) {
	w := newWireWriter(g.wireSize())
	w.u8(tagGlobalModel)
	w.u8(wireVersion)
	w.f64(g.EpsGlobal)
	w.i32(int32(g.MinPtsGlobal))
	w.i32(int32(g.NumClusters))
	w.u32(uint32(len(g.Reps)))
	for _, rep := range g.Reps {
		writeRep(&w, rep.Representative)
		w.str(rep.SiteID)
		w.i32(int32(rep.GlobalCluster))
	}
	return w.buf, nil
}

// UnmarshalBinary decodes a global model.
func (g *GlobalModel) UnmarshalBinary(data []byte) error {
	r := &wireReader{data: data}
	if tag := r.u8(); r.err == nil && tag != tagGlobalModel {
		return fmt.Errorf("model: expected global model frame, got tag 0x%02x", tag)
	}
	if v := r.u8(); r.err == nil && v != wireVersion {
		return fmt.Errorf("model: unsupported wire version %d", v)
	}
	g.EpsGlobal = r.f64()
	g.MinPtsGlobal = int(r.i32())
	g.NumClusters = int(r.i32())
	n := int(r.u32())
	if r.err == nil && n > maxWireReps {
		r.fail("representative count %d exceeds limit", n)
	}
	if r.err == nil && n*minWireGlobalRep > len(data)-r.pos {
		r.fail("representative count %d exceeds the %d remaining bytes", n, len(data)-r.pos)
	}
	if r.err != nil {
		return r.err
	}
	// Pre-scan for the flat coordinate buffer (≤ 1 coordinate allocation per
	// model) and intern the site ids — thousands of reps typically carry a
	// handful of distinct sites, so repeated ids share one string each.
	var flat []float64
	if total, ok := scanRepCoords(*r, n, true); ok && total > 0 {
		flat = make([]float64, 0, total)
	}
	intern := make(map[string]string, 8)
	g.Reps = make([]GlobalRepresentative, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		rep := readRep(r, &flat)
		g.Reps = append(g.Reps, GlobalRepresentative{
			Representative: rep,
			SiteID:         r.strInterned(maxWireSiteID, intern),
			GlobalCluster:  cluster.ID(r.i32()),
		})
	}
	if r.err != nil {
		return r.err
	}
	if r.pos != len(data) {
		return fmt.Errorf("model: %d trailing bytes after global model", len(data)-r.pos)
	}
	return nil
}

// EncodedSize returns the wire size of the local model in bytes — the
// uplink transmission cost of the site.
func (m *LocalModel) EncodedSize() int {
	b, _ := m.MarshalBinary()
	return len(b)
}

// EncodedSize returns the wire size of the global model in bytes — the
// downlink transmission cost per site.
func (g *GlobalModel) EncodedSize() int {
	b, _ := g.MarshalBinary()
	return len(b)
}

// MarshalJSON/Unmarshal are provided by encoding/json via struct tags; the
// helpers below exist so benchmarks can compare the wire encodings.

// JSONSize returns the size of the JSON encoding of the local model.
func (m *LocalModel) JSONSize() int {
	b, err := json.Marshal(m)
	if err != nil {
		return 0
	}
	return len(b)
}

// RawPointsSize returns the wire size that shipping all NumObjects raw
// points of the site would have needed (dim coordinates of 8 bytes each).
// The ratio EncodedSize/RawPointsSize is the paper's transmission saving.
func (m *LocalModel) RawPointsSize(dim int) int {
	return m.NumObjects * dim * 8
}
