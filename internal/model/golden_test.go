package model

import (
	"encoding/hex"
	"fmt"
	"reflect"
	"testing"

	"github.com/dbdc-go/dbdc/internal/geom"
)

// The golden frames below were captured from the encoder BEFORE the
// flat-buffer rewrite (commit db0c39f's bytes.Buffer + binary.Write writer
// and per-rep decoder). They pin the wire format: the one-allocation
// marshal/unmarshal paths must produce and accept byte-identical frames, or
// mixed-version site/server deployments would stop interoperating.
const (
	goldenLocalHex = "4c0106000000736974652d61080000007265702d73636f72000000000000f43f" +
		"04000000e8030000020000000300000002000000000000000000f83f0000000000" +
		"0002c0000000000000fc3f0000000002000000000000000000b03f000000000000" +
		"20400000000000000440010000000200000000000000000008c0000000000000c0" +
		"3f000000000000f43f01000000"
	goldenGlobalHex = "4701000000000000044002000000010000000200000002000000000000000000" +
		"f83f00000000000002c0000000000000fc3f0000000006000000736974652d6100" +
		"00000002000000000000000000b03f000000000000204000000000000004400100" +
		"000006000000736974652d6200000000"
)

func goldenLocalModel() *LocalModel {
	return &LocalModel{
		SiteID:      "site-a",
		Kind:        RepScor,
		EpsLocal:    1.25,
		MinPts:      4,
		NumObjects:  1000,
		NumClusters: 2,
		Reps: []Representative{
			{Point: geom.Point{1.5, -2.25}, Eps: 1.75, LocalCluster: 0},
			{Point: geom.Point{0.0625, 8}, Eps: 2.5, LocalCluster: 1},
			{Point: geom.Point{-3, 0.125}, Eps: 1.25, LocalCluster: 1},
		},
	}
}

func goldenGlobalModel() *GlobalModel {
	return &GlobalModel{
		EpsGlobal:    2.5,
		MinPtsGlobal: 2,
		NumClusters:  1,
		Reps: []GlobalRepresentative{
			{
				Representative: Representative{Point: geom.Point{1.5, -2.25}, Eps: 1.75, LocalCluster: 0},
				SiteID:         "site-a",
				GlobalCluster:  0,
			},
			{
				Representative: Representative{Point: geom.Point{0.0625, 8}, Eps: 2.5, LocalCluster: 1},
				SiteID:         "site-b",
				GlobalCluster:  0,
			},
		},
	}
}

// TestGoldenLocalFrame pins the local model encoding byte for byte against
// the pre-refactor frame, and the decode against the original struct.
func TestGoldenLocalFrame(t *testing.T) {
	want, err := hex.DecodeString(goldenLocalHex)
	if err != nil {
		t.Fatalf("bad golden hex: %v", err)
	}
	got, err := goldenLocalModel().MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	if hex.EncodeToString(got) != hex.EncodeToString(want) {
		t.Fatalf("local wire frame changed:\n got  %x\n want %x", got, want)
	}
	var dec LocalModel
	if err := dec.UnmarshalBinary(want); err != nil {
		t.Fatalf("UnmarshalBinary(golden): %v", err)
	}
	if !reflect.DeepEqual(&dec, goldenLocalModel()) {
		t.Fatalf("decoded local model differs:\n got  %+v\n want %+v", dec, goldenLocalModel())
	}
}

// TestGoldenGlobalFrame is TestGoldenLocalFrame for the global model.
func TestGoldenGlobalFrame(t *testing.T) {
	want, err := hex.DecodeString(goldenGlobalHex)
	if err != nil {
		t.Fatalf("bad golden hex: %v", err)
	}
	got, err := goldenGlobalModel().MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	if hex.EncodeToString(got) != hex.EncodeToString(want) {
		t.Fatalf("global wire frame changed:\n got  %x\n want %x", got, want)
	}
	var dec GlobalModel
	if err := dec.UnmarshalBinary(want); err != nil {
		t.Fatalf("UnmarshalBinary(golden): %v", err)
	}
	if !reflect.DeepEqual(&dec, goldenGlobalModel()) {
		t.Fatalf("decoded global model differs:\n got  %+v\n want %+v", dec, goldenGlobalModel())
	}
}

// bigLocalModel builds a local model with reps 2-dimensional representatives.
func bigLocalModel(reps int) *LocalModel {
	m := &LocalModel{
		SiteID: "site-alloc", Kind: RepScor, EpsLocal: 1, MinPts: 4,
		NumObjects: reps * 10, NumClusters: 4,
	}
	for i := 0; i < reps; i++ {
		m.Reps = append(m.Reps, Representative{
			Point:        geom.Point{float64(i), float64(-i)},
			Eps:          1.5,
			LocalCluster: 0,
		})
	}
	return m
}

// TestDecodeAllocsFlat pins the flat-buffer decode: the number of
// allocations per unmarshal must not grow with the representative count
// (the seed decoder allocated one Point per rep). The fixed overhead —
// reps slice, flat coordinate buffer, strings, reader bookkeeping — is
// bounded by a small constant.
func TestDecodeAllocsFlat(t *testing.T) {
	const reps = 512
	local, err := bigLocalModel(reps).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	g := &GlobalModel{EpsGlobal: 2, MinPtsGlobal: 2, NumClusters: 1}
	for i := 0; i < reps; i++ {
		g.Reps = append(g.Reps, GlobalRepresentative{
			Representative: Representative{Point: geom.Point{float64(i), 1}, Eps: 1, LocalCluster: 0},
			SiteID:         fmt.Sprintf("site-%d", i%4),
			GlobalCluster:  0,
		})
	}
	global, err := g.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	// Far below one allocation per rep; generous against small runtime and
	// map-sizing variations.
	const maxAllocs = 32

	localAllocs := testing.AllocsPerRun(20, func() {
		var m LocalModel
		if err := m.UnmarshalBinary(local); err != nil {
			t.Fatal(err)
		}
	})
	if localAllocs > maxAllocs {
		t.Errorf("local decode: %.0f allocs for %d reps, want ≤ %d (per-rep coordinate allocation crept back in?)",
			localAllocs, reps, maxAllocs)
	}

	globalAllocs := testing.AllocsPerRun(20, func() {
		var m GlobalModel
		if err := m.UnmarshalBinary(global); err != nil {
			t.Fatal(err)
		}
	})
	if globalAllocs > maxAllocs {
		t.Errorf("global decode: %.0f allocs for %d reps, want ≤ %d (per-rep coordinate or site-id allocation crept back in?)",
			globalAllocs, reps, maxAllocs)
	}

	// Marshal is one buffer allocation.
	src := bigLocalModel(reps)
	marshalAllocs := testing.AllocsPerRun(20, func() {
		if _, err := src.MarshalBinary(); err != nil {
			t.Fatal(err)
		}
	})
	if marshalAllocs > 1 {
		t.Errorf("local marshal: %.0f allocs, want ≤ 1 (exact presize lost?)", marshalAllocs)
	}
}
