package model

import (
	"math/rand"
	"testing"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/geom"
)

func globalFromClusters(clusters map[cluster.ID][]geom.Point) *GlobalModel {
	g := &GlobalModel{EpsGlobal: 0.6, MinPtsGlobal: 2}
	seen := make(map[cluster.ID]bool)
	for id, pts := range clusters {
		seen[id] = true
		for _, p := range pts {
			g.Reps = append(g.Reps, GlobalRepresentative{
				Representative: Representative{Point: p, Eps: 0.3, LocalCluster: 0},
				SiteID:         "s1",
				GlobalCluster:  id,
			})
		}
	}
	g.NumClusters = len(seen)
	return g
}

func stableIDOf(g *GlobalModel, p geom.Point) (cluster.ID, bool) {
	for _, r := range g.Reps {
		if r.Point.Equal(p) {
			return r.GlobalCluster, true
		}
	}
	return 0, false
}

// A cluster that keeps a majority of its representatives keeps its id even
// when the re-clustering renumbers everything.
func TestMatcherStableUnderRenumbering(t *testing.T) {
	m := NewClusterMatcher()
	a := []geom.Point{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	b := []geom.Point{{9, 9}, {9, 8}, {8, 9}}
	v1 := globalFromClusters(map[cluster.ID][]geom.Point{0: a, 1: b})
	m.RelabelGlobal(v1)
	idA, _ := stableIDOf(v1, a[0])
	idB, _ := stableIDOf(v1, b[0])
	if idA == idB {
		t.Fatal("distinct clusters share a stable id")
	}
	// Version 2: raw ids swapped, one rep of each churned out, one new.
	v2 := globalFromClusters(map[cluster.ID][]geom.Point{
		1: {a[1], a[2], a[3], {0.5, 0.5}},
		0: {b[1], b[2]},
	})
	m.RelabelGlobal(v2)
	if err := v2.Validate(); err != nil {
		t.Fatalf("relabeled model invalid: %v", err)
	}
	if got, _ := stableIDOf(v2, a[1]); got != idA {
		t.Fatalf("cluster A renamed %d → %d despite 3/4 overlap", idA, got)
	}
	if got, _ := stableIDOf(v2, b[1]); got != idB {
		t.Fatalf("cluster B renamed %d → %d despite 2/3 overlap", idB, got)
	}
	if got, _ := stableIDOf(v2, geom.Point{0.5, 0.5}); got != idA {
		t.Fatal("new rep of cluster A got a different id than its cluster")
	}
}

// A brand-new cluster must get a fresh id, never a retired one.
func TestMatcherFreshIDsNeverReused(t *testing.T) {
	m := NewClusterMatcher()
	a := []geom.Point{{0, 0}, {0, 1}}
	v1 := globalFromClusters(map[cluster.ID][]geom.Point{0: a})
	m.RelabelGlobal(v1)
	idA, _ := stableIDOf(v1, a[0])
	// A dies; B appears.
	b := []geom.Point{{5, 5}, {5, 6}}
	v2 := globalFromClusters(map[cluster.ID][]geom.Point{0: b})
	m.RelabelGlobal(v2)
	idB, _ := stableIDOf(v2, b[0])
	if idB == idA {
		t.Fatalf("retired id %d reused for an unrelated cluster", idA)
	}
	// A's points return: no history survives for them (B holds the map
	// now), so they must again get a fresh id, not B's.
	v3 := globalFromClusters(map[cluster.ID][]geom.Point{0: b, 1: a})
	m.RelabelGlobal(v3)
	id3A, _ := stableIDOf(v3, a[0])
	id3B, _ := stableIDOf(v3, b[0])
	if id3B != idB {
		t.Fatalf("persisting cluster B renamed %d → %d", idB, id3B)
	}
	if id3A == idB {
		t.Fatal("returning cluster stole B's id")
	}
}

// A split: the larger half keeps the id, the smaller half gets a fresh one.
func TestMatcherSplitKeepsIDOnLargerHalf(t *testing.T) {
	m := NewClusterMatcher()
	pts := []geom.Point{{0, 0}, {0, 1}, {0, 2}, {10, 0}, {10, 1}}
	v1 := globalFromClusters(map[cluster.ID][]geom.Point{0: pts})
	m.RelabelGlobal(v1)
	orig, _ := stableIDOf(v1, pts[0])
	v2 := globalFromClusters(map[cluster.ID][]geom.Point{
		3: {pts[0], pts[1], pts[2]},
		7: {pts[3], pts[4]},
	})
	m.RelabelGlobal(v2)
	big, _ := stableIDOf(v2, pts[0])
	small, _ := stableIDOf(v2, pts[3])
	if big != orig {
		t.Fatalf("larger split half lost the id: %d → %d", orig, big)
	}
	if small == orig {
		t.Fatal("both split halves kept the id")
	}
}

// Local relabeling is a bijection on the ids present, so NumClusters and
// the partition structure are preserved while retained reps stay
// byte-stable across versions — the property delta diffing depends on.
func TestMatcherLocalKeepsRetainedRepsStable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewClusterMatcher()
	lm := randomLocalModel(rng, "s", 3)
	m.RelabelLocal(lm)
	if err := lm.Validate(); err != nil {
		t.Fatal(err)
	}
	// Renumber the clusters the way a fresh batch run would, keeping the
	// same partition: ids 0,1,2 → 2,0,1.
	perm := map[cluster.ID]cluster.ID{0: 2, 1: 0, 2: 1}
	next := &LocalModel{SiteID: lm.SiteID, Kind: lm.Kind, EpsLocal: lm.EpsLocal,
		MinPts: lm.MinPts, NumObjects: lm.NumObjects, NumClusters: lm.NumClusters}
	for _, r := range lm.Reps {
		r.LocalCluster = perm[r.LocalCluster]
		next.Reps = append(next.Reps, r)
	}
	m.RelabelLocal(next)
	if next.NumClusters != lm.NumClusters {
		t.Fatalf("NumClusters changed: %d → %d", lm.NumClusters, next.NumClusters)
	}
	for i := range next.Reps {
		if next.Reps[i].LocalCluster != lm.Reps[i].LocalCluster {
			t.Fatalf("rep %d drifted from stable id %d to %d despite identical partition",
				i, lm.Reps[i].LocalCluster, next.Reps[i].LocalCluster)
		}
	}
	// Consequence: the tracker sees zero change across the renumbering.
	tracker := NewDeltaTracker()
	tracker.Commit(tracker.Delta(lm))
	d := tracker.Delta(next).Delta
	if len(d.Added) != 0 || len(d.Removed) != 0 {
		t.Fatalf("pure renumbering produced %d additions, %d removals", len(d.Added), len(d.Removed))
	}
}
