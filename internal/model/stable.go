package model

import (
	"encoding/binary"
	"math"
	"sort"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/geom"
)

// ClusterMatcher assigns stable cluster ids across successive versions of a
// clustering by representative overlap, the way an object tracker matches
// detections across frames: a new cluster inherits the id of the previous
// cluster contributing the most of its representatives (ties broken toward
// the older id), each previous id is claimed by at most one new cluster,
// and clusters with no overlap get fresh, never-reused ids.
//
// Both uses in the streaming pipeline need this. Locally, batch re-runs of
// DBSCAN renumber clusters arbitrarily, which would make content-based
// delta diffing mark every representative changed; rematching against the
// previously transmitted model keeps retained representatives byte-stable.
// Globally, the server re-clusters from scratch on every fold, and classify
// clients would see cluster 0 become cluster 3 across two answers;
// rematching makes ids coherent across model versions for every cluster
// that keeps a majority of its representatives.
//
// Matching is by representative point (and owning site, for global models),
// not by ε-range or raw cluster id: a representative whose neighborhood
// radius drifted still votes for its old cluster.
type ClusterMatcher struct {
	next cluster.ID
	prev map[string]cluster.ID // rep identity -> stable cluster id
}

// NewClusterMatcher returns a matcher with no history; the first model it
// relabels receives dense fresh ids.
func NewClusterMatcher() *ClusterMatcher { return &ClusterMatcher{} }

// pointIdentity keys a representative by owning site and coordinates.
func pointIdentity(siteID string, p geom.Point) string {
	b := make([]byte, 0, 4+len(siteID)+8*len(p))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(siteID)))
	b = append(b, siteID...)
	for _, c := range p {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(c))
	}
	return string(b)
}

// assign computes the raw→stable id mapping for one model version given the
// per-representative identity keys and raw cluster ids, then replaces the
// matcher's history with the new version. keys and raw are positionally
// aligned; negative raw ids (noise) are ignored.
func (m *ClusterMatcher) assign(keys []string, raw []cluster.ID) map[cluster.ID]cluster.ID {
	votes := make(map[cluster.ID]map[cluster.ID]int)
	var order []cluster.ID
	for i, r := range raw {
		if r < 0 {
			continue
		}
		if _, ok := votes[r]; !ok {
			votes[r] = make(map[cluster.ID]int)
			order = append(order, r)
		}
		if s, ok := m.prev[keys[i]]; ok {
			votes[r][s]++
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	// Best previous id per raw cluster, then greedy assignment strongest
	// overlap first so a previous id contested by two successors goes to
	// the one sharing more representatives.
	type claim struct {
		raw    cluster.ID
		stable cluster.ID
		weight int
	}
	claims := make([]claim, 0, len(order))
	for _, r := range order {
		best, weight := cluster.ID(-1), 0
		for s, w := range votes[r] {
			if w > weight || (w == weight && (best < 0 || s < best)) {
				best, weight = s, w
			}
		}
		claims = append(claims, claim{raw: r, stable: best, weight: weight})
	}
	sort.Slice(claims, func(i, j int) bool {
		if claims[i].weight != claims[j].weight {
			return claims[i].weight > claims[j].weight
		}
		return claims[i].raw < claims[j].raw
	})
	assigned := make(map[cluster.ID]cluster.ID, len(order))
	claimed := make(map[cluster.ID]bool, len(order))
	for _, c := range claims {
		if c.weight > 0 && !claimed[c.stable] {
			assigned[c.raw] = c.stable
			claimed[c.stable] = true
		}
	}
	for _, r := range order { // fresh ids for the unmatched, oldest raw first
		if _, ok := assigned[r]; ok {
			continue
		}
		for claimed[m.next] { // never reuse an id still alive this version
			m.next++
		}
		assigned[r] = m.next
		claimed[m.next] = true
		m.next++
	}
	prev := make(map[string]cluster.ID, len(keys))
	for i, r := range raw {
		if r < 0 {
			continue
		}
		prev[keys[i]] = assigned[r]
	}
	m.prev = prev
	return assigned
}

// RelabelLocal rewrites the model's local cluster ids in place to stable
// ids matched against the previous call. NumClusters is preserved (the
// rewrite is a bijection on the ids present).
func (m *ClusterMatcher) RelabelLocal(lm *LocalModel) {
	keys := make([]string, len(lm.Reps))
	raw := make([]cluster.ID, len(lm.Reps))
	for i, r := range lm.Reps {
		keys[i] = pointIdentity("", r.Point)
		raw[i] = r.LocalCluster
	}
	assigned := m.assign(keys, raw)
	for i := range lm.Reps {
		if id := lm.Reps[i].LocalCluster; id >= 0 {
			lm.Reps[i].LocalCluster = assigned[id]
		}
	}
}

// RelabelGlobal rewrites the model's global cluster ids in place to stable
// ids matched against the previous call. Representative identity includes
// the owning site, so equal points from different sites stay distinct.
func (m *ClusterMatcher) RelabelGlobal(g *GlobalModel) {
	keys := make([]string, len(g.Reps))
	raw := make([]cluster.ID, len(g.Reps))
	for i, r := range g.Reps {
		keys[i] = pointIdentity(r.SiteID, r.Point)
		raw[i] = r.GlobalCluster
	}
	assigned := m.assign(keys, raw)
	for i := range g.Reps {
		if id := g.Reps[i].GlobalCluster; id >= 0 {
			g.Reps[i].GlobalCluster = assigned[id]
		}
	}
}
