// Package pdbscan implements an exact distributed DBSCAN in the spirit of
// PDBSCAN (Xu, Jäger, Kriegel 1999 — reference [21] of the DBDC paper):
// the data is partitioned into spatial stripes, every site receives a halo
// of width Eps from its neighbors, clusters its own objects exactly, and a
// merge phase joins clusters across stripe boundaries. Unlike DBDC the
// result is identical to a central DBSCAN run (up to border-point ties) —
// at the price of shipping real objects (halo + boundary information)
// instead of a handful of representatives. The package exists as the exact
// comparator DBDC trades against; the comparison experiment quantifies the
// quality/transmission trade-off.
package pdbscan

import (
	"fmt"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/dbscan"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/index"
	"github.com/dbdc-go/dbdc/internal/shard"
)

// Result is the outcome of a distributed exact DBSCAN run.
type Result struct {
	// Labels assigns every input object its global cluster id, in input
	// order.
	Labels cluster.Labeling
	// Core marks the core objects (identical to a central run).
	Core []bool
	// Partitions is the number of stripes used.
	Partitions int
	// HaloBytes is the transmission cost of the halo exchange (raw points).
	HaloBytes int
	// MergeBytes is the cost of the boundary information sent to the
	// server for the merge phase (points + labels + core flags).
	MergeBytes int
}

// BytesExchanged is the total transmission cost of the run.
func (r *Result) BytesExchanged() int { return r.HaloBytes + r.MergeBytes }

// site is one stripe with its halo view.
type site struct {
	// own holds the indexes (into the global point slice) this site owns.
	own []int
	// halo holds foreign indexes within Eps of the stripe.
	halo []int
	// labels are the site-local cluster ids of the own points.
	labels map[int]cluster.ID
	// core flags of the own points (exact).
	core map[int]bool
	// numClusters counts the site-local clusters.
	numClusters int
}

// Run executes distributed exact DBSCAN over the given points with the
// given number of spatial partitions. The points are partitioned into
// vertical stripes of equal cardinality along the first coordinate.
func Run(pts []geom.Point, params dbscan.Params, partitions int) (*Result, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if partitions < 1 {
		return nil, fmt.Errorf("pdbscan: need at least one partition, got %d", partitions)
	}
	if len(pts) == 0 {
		return &Result{Partitions: partitions}, nil
	}
	dim := pts[0].Dim()
	res := &Result{
		Labels:     cluster.NewLabeling(len(pts)),
		Core:       make([]bool, len(pts)),
		Partitions: partitions,
	}
	sites, err := makeSites(pts, params.Eps, partitions)
	if err != nil {
		return nil, err
	}
	pointBytes := dim * 8
	for _, s := range sites {
		res.HaloBytes += len(s.halo) * pointBytes
	}
	// Local phase: exact clustering of the own objects.
	for _, s := range sites {
		if err := s.clusterLocally(pts, params); err != nil {
			return nil, err
		}
	}
	// Merge phase: global union-find over (site, local id), driven by the
	// boundary objects every site publishes.
	if err := merge(pts, params, sites, res, pointBytes); err != nil {
		return nil, err
	}
	return res, nil
}

// makeSites splits the points into stripes of equal cardinality along
// dimension 0 and attaches the Eps-halo of each stripe. The partitioning
// itself lives in internal/shard (shared with the grid partitioner behind
// dbscan.RunParallel); each stripe becomes one site.
func makeSites(pts []geom.Point, eps float64, partitions int) ([]*site, error) {
	stripes := shard.Stripes(pts, eps, partitions)
	sites := make([]*site, len(stripes))
	for i := range stripes {
		sites[i] = &site{own: stripes[i].Own, halo: stripes[i].Halo}
	}
	return sites, nil
}

// clusterLocally runs DBSCAN over own+halo and keeps the (exact) results
// for the own objects only.
func (s *site) clusterLocally(pts []geom.Point, params dbscan.Params) error {
	view := make([]geom.Point, 0, len(s.own)+len(s.halo))
	viewIdx := make([]int, 0, cap(view))
	for _, i := range s.own {
		view = append(view, pts[i])
		viewIdx = append(viewIdx, i)
	}
	for _, i := range s.halo {
		view = append(view, pts[i])
		viewIdx = append(viewIdx, i)
	}
	idx, err := index.Build(index.KindRStar, view, geom.Euclidean{}, params.Eps)
	if err != nil {
		return err
	}
	local, err := dbscan.Run(idx, params, dbscan.Options{})
	if err != nil {
		return err
	}
	s.labels = make(map[int]cluster.ID, len(s.own))
	s.core = make(map[int]bool, len(s.own))
	remap := make(map[cluster.ID]cluster.ID)
	assign := func(localID cluster.ID) cluster.ID {
		nid, ok := remap[localID]
		if !ok {
			nid = cluster.ID(s.numClusters)
			s.numClusters++
			remap[localID] = nid
		}
		return nid
	}
	// Own points come first in the view. Core objects keep their local
	// cluster. A non-core object may have been claimed by a cluster whose
	// only cores in reach are halo objects — such a label has no anchor on
	// this site and the merge phase could not connect it, so border status
	// is re-derived from own cores only; objects without an own-core
	// anchor become local noise and are adopted through a foreign core in
	// the merge phase (they necessarily lie in the boundary region).
	for v := 0; v < len(s.own); v++ {
		gi := viewIdx[v]
		s.core[gi] = local.Core[v]
		if local.Core[v] {
			s.labels[gi] = assign(local.Labels[v])
		}
	}
	var nbuf []int // reused ε-neighborhood buffer
	for v := 0; v < len(s.own); v++ {
		gi := viewIdx[v]
		if local.Core[v] {
			continue
		}
		s.labels[gi] = cluster.Noise
		if local.Labels[v] < 0 {
			continue
		}
		nbuf = index.RangeInto(idx, view[v], params.Eps, nbuf)
		for _, w := range nbuf {
			if w < len(s.own) && local.Core[w] {
				s.labels[gi] = assign(local.Labels[w])
				break
			}
		}
	}
	return nil
}

// merge performs the server-side phase: cross-stripe core pairs within Eps
// unify their clusters; boundary noise adjacent to a foreign core becomes
// a border object of that cluster.
func merge(pts []geom.Point, params dbscan.Params, sites []*site, res *Result, pointBytes int) error {
	// Boundary objects: own points within Eps (along dim 0) of the stripe
	// edge — only they can have foreign neighbors. Every site publishes
	// them with local label and core flag.
	type boundaryObj struct {
		global int
		siteID int
	}
	var boundary []boundaryObj
	for si, s := range sites {
		lo, hi := pts[s.own[0]][0], pts[s.own[0]][0]
		for _, i := range s.own {
			if pts[i][0] < lo {
				lo = pts[i][0]
			}
			if pts[i][0] > hi {
				hi = pts[i][0]
			}
		}
		for _, i := range s.own {
			if pts[i][0] <= lo+params.Eps || pts[i][0] >= hi-params.Eps {
				boundary = append(boundary, boundaryObj{global: i, siteID: si})
				res.MergeBytes += pointBytes + 4 + 1 // coords + label + core flag
			}
		}
	}
	// Union-find over (site, local id).
	parent := make(map[[2]int32][2]int32)
	var find func(x [2]int32) [2]int32
	find = func(x [2]int32) [2]int32 {
		for {
			p, ok := parent[x]
			if !ok || p == x {
				return x
			}
			gp, ok := parent[p]
			if ok && gp != p {
				parent[x] = gp
			}
			x = p
		}
	}
	union := func(a, b [2]int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	keyOf := func(siteID int, id cluster.ID) [2]int32 { return [2]int32{int32(siteID), int32(id)} }
	// Index over the boundary points for the cross pairs.
	bPts := make([]geom.Point, len(boundary))
	for i, b := range boundary {
		bPts[i] = pts[b.global]
	}
	bIdx, err := index.Build(index.KindKDTree, bPts, geom.Euclidean{}, params.Eps)
	if err != nil {
		return err
	}
	var nbuf []int // reused ε-neighborhood buffer
	for i, b := range boundary {
		s := sites[b.siteID]
		if !s.core[b.global] {
			continue
		}
		nbuf = index.RangeInto(bIdx, bPts[i], params.Eps, nbuf)
		for _, j := range nbuf {
			o := boundary[j]
			if o.siteID == b.siteID {
				continue
			}
			if sites[o.siteID].core[o.global] {
				union(keyOf(b.siteID, s.labels[b.global]), keyOf(o.siteID, sites[o.siteID].labels[o.global]))
			}
		}
	}
	// Noise boundary objects adjacent to a foreign core become borders.
	adopted := make(map[int][2]int32)
	for i, b := range boundary {
		if sites[b.siteID].labels[b.global] != cluster.Noise {
			continue
		}
		nbuf = index.RangeInto(bIdx, bPts[i], params.Eps, nbuf)
		for _, j := range nbuf {
			o := boundary[j]
			if o.siteID != b.siteID && sites[o.siteID].core[o.global] {
				adopted[b.global] = keyOf(o.siteID, sites[o.siteID].labels[o.global])
				break
			}
		}
	}
	// Resolve global labels.
	globalID := make(map[[2]int32]cluster.ID)
	var next cluster.ID
	resolve := func(k [2]int32) cluster.ID {
		r := find(k)
		id, ok := globalID[r]
		if !ok {
			id = next
			next++
			globalID[r] = id
		}
		return id
	}
	for si, s := range sites {
		for _, i := range s.own {
			res.Core[i] = s.core[i]
			switch {
			case s.labels[i] >= 0:
				res.Labels[i] = resolve(keyOf(si, s.labels[i]))
			default:
				if k, ok := adopted[i]; ok {
					res.Labels[i] = resolve(k)
				} else {
					res.Labels[i] = cluster.Noise
				}
			}
		}
	}
	return nil
}
