package pdbscan

import (
	"math/rand"
	"testing"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/data"
	"github.com/dbdc-go/dbdc/internal/dbscan"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/index"
)

func central(t *testing.T, pts []geom.Point, params dbscan.Params) *dbscan.Result {
	t.Helper()
	res, err := dbscan.Run(index.NewLinear(pts, geom.Euclidean{}), params, dbscan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// checkExact verifies the defining property of the exact comparator: the
// distributed result matches central DBSCAN in core flags, noise set and
// core partition.
func checkExact(t *testing.T, pts []geom.Point, params dbscan.Params, res *Result) {
	t.Helper()
	ref := central(t, pts, params)
	for i := range pts {
		if res.Core[i] != ref.Core[i] {
			t.Fatalf("core flag of %d differs from central", i)
		}
		if (res.Labels[i] == cluster.Noise) != (ref.Labels[i] == cluster.Noise) {
			t.Fatalf("noise status of %d differs from central", i)
		}
	}
	var a, b cluster.Labeling
	for i := range pts {
		if ref.Core[i] {
			a = append(a, res.Labels[i])
			b = append(b, ref.Labels[i])
		}
	}
	if !a.EquivalentTo(b) {
		t.Fatal("core partition differs from central")
	}
	// Border objects sit within Eps of a core of their assigned cluster.
	e := geom.Euclidean{}
	for i := range pts {
		if res.Labels[i] >= 0 && !res.Core[i] {
			ok := false
			for j := range pts {
				if res.Core[j] && res.Labels[j] == res.Labels[i] &&
					e.Distance(pts[i], pts[j]) <= params.Eps {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("border object %d unreachable from its cluster", i)
			}
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(nil, dbscan.Params{Eps: 0, MinPts: 2}, 2); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := Run(nil, dbscan.Params{Eps: 1, MinPts: 2}, 0); err == nil {
		t.Error("zero partitions accepted")
	}
	res, err := Run(nil, dbscan.Params{Eps: 1, MinPts: 2}, 2)
	if err != nil || len(res.Labels) != 0 {
		t.Fatalf("empty input: %v, %v", res, err)
	}
}

func TestSinglePartitionEqualsCentral(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, 300)
	for i := range pts {
		pts[i] = geom.Point{rng.Float64() * 10, rng.Float64() * 10}
	}
	params := dbscan.Params{Eps: 0.6, MinPts: 4}
	res, err := Run(pts, params, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkExact(t, pts, params, res)
	if res.HaloBytes != 0 {
		t.Fatalf("single partition exchanged %d halo bytes", res.HaloBytes)
	}
}

// The core exactness property across partition counts, cluster shapes and
// clusters deliberately straddling stripe boundaries.
func TestExactAcrossPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var pts []geom.Point
	// A horizontal band crossing all stripes...
	for i := 0; i < 400; i++ {
		pts = append(pts, geom.Point{rng.Float64() * 40, rng.NormFloat64() * 0.3})
	}
	// ...two compact clusters...
	for i := 0; i < 150; i++ {
		pts = append(pts, geom.Point{10 + rng.NormFloat64()*0.4, 10 + rng.NormFloat64()*0.4})
	}
	for i := 0; i < 150; i++ {
		pts = append(pts, geom.Point{30 + rng.NormFloat64()*0.4, 10 + rng.NormFloat64()*0.4})
	}
	// ...and sprinkled noise.
	for i := 0; i < 60; i++ {
		pts = append(pts, geom.Point{rng.Float64() * 40, 4 + rng.Float64() * 4})
	}
	params := dbscan.Params{Eps: 0.7, MinPts: 5}
	for _, partitions := range []int{2, 3, 5, 8} {
		res, err := Run(pts, params, partitions)
		if err != nil {
			t.Fatal(err)
		}
		checkExact(t, pts, params, res)
		if partitions > 1 && res.HaloBytes == 0 {
			t.Fatalf("partitions=%d: no halo exchanged", partitions)
		}
		if res.BytesExchanged() != res.HaloBytes+res.MergeBytes {
			t.Fatal("byte accounting inconsistent")
		}
	}
}

func TestExactOnDatasets(t *testing.T) {
	for _, ds := range data.ABC(3) {
		res, err := Run(ds.Points, ds.Params, 4)
		if err != nil {
			t.Fatal(err)
		}
		checkExact(t, ds.Points, ds.Params, res)
	}
}

// Property: on random data with random partition counts the exactness
// invariants hold.
func TestExactRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 6; trial++ {
		n := 100 + rng.Intn(400)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{rng.Float64() * 12, rng.Float64() * 12}
		}
		params := dbscan.Params{Eps: 0.4 + rng.Float64()*0.5, MinPts: 3 + rng.Intn(4)}
		res, err := Run(pts, params, 1+rng.Intn(6))
		if err != nil {
			t.Fatal(err)
		}
		checkExact(t, pts, params, res)
	}
}

func TestDuplicateXCoordinates(t *testing.T) {
	// Many identical x values straddling stripe boundaries stress the
	// stripe-splitting logic.
	var pts []geom.Point
	for i := 0; i < 200; i++ {
		pts = append(pts, geom.Point{float64(i % 4), float64(i) * 0.01})
	}
	params := dbscan.Params{Eps: 0.5, MinPts: 4}
	res, err := Run(pts, params, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkExact(t, pts, params, res)
}
