// Command experiments regenerates the tables and figures of the DBDC
// paper's evaluation (Section 9).
//
// Usage:
//
//	experiments [-run all|fig7a|fig7b|fig8|fig9|fig10|fig11] [-seed N]
//	            [-scale F] [-index rstar|kdtree|grid|linear|mtree]
//
// The output tables map one-to-one to the paper's figures; EXPERIMENTS.md
// records the paper-versus-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/dbdc-go/dbdc/internal/experiments"
	"github.com/dbdc-go/dbdc/internal/index"
)

func main() {
	run := flag.String("run", "all", "experiment to run: all, fig7a, fig7b, fig8, fig9, fig10, fig11, transmission, budgets, hierarchy, baselines, comparison, dimensions, optics-sweep, partitions, incremental")
	seed := flag.Int64("seed", 2004, "random seed for data generation and partitioning")
	scale := flag.Float64("scale", 1.0, "cardinality scale in (0,1]; use small values for quick runs")
	idx := flag.String("index", "rstar", "neighborhood index: rstar, kdtree, grid, linear, mtree")
	format := flag.String("format", "text", "output format: text or md")
	flag.Parse()
	printTable := func(t *experiments.Table) {
		if *format == "md" {
			t.FprintMarkdown(os.Stdout)
			return
		}
		t.Fprint(os.Stdout)
	}

	opt := experiments.Options{Seed: *seed, Scale: *scale, Index: index.Kind(*idx)}
	var err error
	if *run == "all" {
		var tables []*experiments.Table
		tables, err = experiments.All(opt)
		for _, t := range tables {
			printTable(t)
		}
	} else {
		var runner func(experiments.Options) (*experiments.Table, error)
		runner, err = experiments.ByID(*run)
		if err == nil {
			var t *experiments.Table
			t, err = runner(opt)
			if err == nil {
				printTable(t)
			}
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}
