package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// newestTwo resolves directory mode: it scans dir for BENCH_*.json
// artifacts and returns the two most recently modified, oldest first — the
// natural "diff my last run against the one before" gesture after a series
// of `make bench-json` runs into the same directory. Modification-time ties
// (filesystem timestamp granularity, archive extraction) break by name so
// the choice stays deterministic.
func newestTwo(dir string) (oldPath, newPath string, err error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", "", err
	}
	type artifact struct {
		path string
		mod  time.Time
	}
	arts := make([]artifact, 0, len(matches))
	for _, p := range matches {
		info, err := os.Stat(p)
		if err != nil {
			return "", "", err
		}
		if info.IsDir() {
			continue
		}
		arts = append(arts, artifact{path: p, mod: info.ModTime()})
	}
	if len(arts) < 2 {
		return "", "", fmt.Errorf("%s holds %d BENCH_*.json artifacts, need at least 2 for a diff", dir, len(arts))
	}
	sort.Slice(arts, func(i, j int) bool {
		if !arts[i].mod.Equal(arts[j].mod) {
			return arts[i].mod.Before(arts[j].mod)
		}
		return arts[i].path < arts[j].path
	})
	return arts[len(arts)-2].path, arts[len(arts)-1].path, nil
}
