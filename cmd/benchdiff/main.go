// Command benchdiff compares two BENCH_<rev>.json benchmark artifacts (the
// internal/benchio schema produced by cmd/benchjson, `make bench-json` and
// dbdc-server -report-json) entry by entry and classifies every shared
// column — ns/op, B/op, allocs/op, custom metrics with -metrics — against a
// relative noise threshold:
//
//	benchdiff -threshold 0.10 BENCH_old.json BENCH_new.json
//	benchdiff -fail BENCH_old.json BENCH_new.json   # exit 1 on regression
//	benchdiff bench-history/                        # newest two artifacts in the dir
//
// With a single directory argument, benchdiff picks the two most recently
// modified BENCH_*.json files in it and diffs the older against the newer —
// the "did my last run regress?" gesture for a directory accumulating one
// artifact per revision.
//
// Entries present on only one side are listed as added/removed and never
// fail the diff. With -fail the exit status is 1 when at least one column
// regressed beyond the threshold, so CI can gate on it; without -fail the
// diff is informational (exit 0), the right mode for single-iteration
// bench-smoke artifacts where timings are all noise.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/dbdc-go/dbdc/internal/benchio"
)

func main() {
	threshold := flag.Float64("threshold", 0.10, "relative change below which a delta is noise")
	failOnRegression := flag.Bool("fail", false, "exit 1 when any column regressed beyond the threshold")
	metrics := flag.Bool("metrics", false, "also compare custom b.ReportMetric columns")
	flag.Parse()
	var oldPath, newPath string
	switch flag.NArg() {
	case 2:
		oldPath, newPath = flag.Arg(0), flag.Arg(1)
	case 1:
		// Directory mode: diff the newest two artifacts in the directory.
		info, err := os.Stat(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		if !info.IsDir() {
			fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.10] [-fail] [-metrics] OLD.json NEW.json | DIR")
			os.Exit(2)
		}
		oldPath, newPath, err = newestTwo(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.10] [-fail] [-metrics] OLD.json NEW.json | DIR")
		os.Exit(2)
	}
	oldRep, err := readReport(oldPath)
	if err != nil {
		fatal(err)
	}
	newRep, err := readReport(newPath)
	if err != nil {
		fatal(err)
	}
	res := benchio.Diff(oldRep, newRep, benchio.DiffOptions{
		Threshold: *threshold,
		Metrics:   *metrics,
	})
	fmt.Printf("benchdiff: %s (rev %s) vs %s (rev %s)\n",
		oldPath, revOr(oldRep.Rev), newPath, revOr(newRep.Rev))
	fmt.Printf("old host: %s\n", oldRep.Host())
	fmt.Printf("new host: %s\n", newRep.Host())
	if mismatch := benchio.HostMismatch(oldRep, newRep); len(mismatch) > 0 {
		fmt.Printf("WARNING: artifacts differ in %s — deltas are not comparable measurements\n",
			strings.Join(mismatch, ", "))
	}
	for _, w := range benchio.CoreCountWarnings(oldRep, newRep) {
		fmt.Printf("WARNING: %s\n", w)
	}
	fmt.Print(res)
	if *failOnRegression && res.Regressions > 0 {
		os.Exit(1)
	}
}

func readReport(path string) (*benchio.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep, err := benchio.Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func revOr(rev string) string {
	if rev == "" {
		return "?"
	}
	return rev
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
