package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func touch(t *testing.T, dir, name string, mod time.Time) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, mod, mod); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestNewestTwo(t *testing.T) {
	dir := t.TempDir()
	base := time.Now().Add(-time.Hour).Truncate(time.Second)
	touch(t, dir, "BENCH_aaa.json", base)
	oldWant := touch(t, dir, "BENCH_bbb.json", base.Add(10*time.Minute))
	newWant := touch(t, dir, "BENCH_ccc.json", base.Add(20*time.Minute))
	// Non-matching files are invisible to the scan even when newest.
	touch(t, dir, "notes.json", base.Add(time.Hour))
	touch(t, dir, "BENCH_zzz.txt", base.Add(time.Hour))

	oldPath, newPath, err := newestTwo(dir)
	if err != nil {
		t.Fatal(err)
	}
	if oldPath != oldWant || newPath != newWant {
		t.Fatalf("newestTwo = (%s, %s), want (%s, %s)", oldPath, newPath, oldWant, newWant)
	}
}

func TestNewestTwoTieBreaksByName(t *testing.T) {
	dir := t.TempDir()
	same := time.Now().Add(-time.Hour).Truncate(time.Second)
	a := touch(t, dir, "BENCH_a.json", same)
	b := touch(t, dir, "BENCH_b.json", same)
	oldPath, newPath, err := newestTwo(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Identical timestamps: lexicographic order decides, deterministically.
	if oldPath != a || newPath != b {
		t.Fatalf("tie broke to (%s, %s), want (%s, %s)", oldPath, newPath, a, b)
	}
}

func TestNewestTwoNeedsTwoArtifacts(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := newestTwo(dir); err == nil {
		t.Fatal("empty directory accepted")
	}
	touch(t, dir, "BENCH_only.json", time.Now())
	if _, _, err := newestTwo(dir); err == nil {
		t.Fatal("single artifact accepted")
	}
}
