// Command datagen generates the evaluation data sets as CSV.
//
// Usage:
//
//	datagen -dataset A [-n 8700] [-seed 1] [-o points.csv]
//
// Data sets: A (randomly generated clusters, scalable), B (4000 objects,
// very noisy), C (1021 objects, 3 clusters).
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/dbdc-go/dbdc/internal/data"
)

func main() {
	name := flag.String("dataset", "A", "dataset to generate: A, B or C")
	n := flag.Int("n", data.DatasetASize, "cardinality (dataset A only)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var ds data.Dataset
	switch *name {
	case "A", "a":
		ds = data.DatasetA(*n, *seed)
	case "B", "b":
		ds = data.DatasetB(*seed)
	case "C", "c":
		ds = data.DatasetC(*seed)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q (have A, B, C)\n", *name)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := data.WriteCSV(w, ds.Points); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d points of dataset %s (suggested DBSCAN: eps=%g minpts=%d)\n",
		len(ds.Points), ds.Name, ds.Params.Eps, ds.Params.MinPts)
}
