// Command dbdc-agg runs one interior node of a DBDC aggregation tree
// (docs/hierarchy.md): toward its children it is a quorum round server
// exactly like dbdc-server, toward -parent it behaves like a site. Each
// round it collects its region's models, merges them (regional global
// step), condenses the merged result back into a site-shaped local model
// — optionally capped by -rep-budget — uploads it to the parent with an
// aggregation-provenance section attached, and broadcasts the parent's
// reply (the root's global model) to its children. Sites and deeper
// aggregators connect to it with the unchanged wire protocol.
//
// Usage:
//
//	dbdc-agg -addr :7171 -id agg-west -parent 127.0.0.1:7070 \
//	    -expect 3 -eps 1.2 -minpts 4 [-quorum 2] [-rep-budget 8] \
//	    [-accept-timeout 30s] [-expect-sites site-1,site-2,site-3]
//
// A round completes as soon as all expected children delivered a model,
// or at the accept deadline with at least -quorum usable models. If the
// parent is unreachable or rejects the upload, the round fails and every
// child receives the error — a subtree never fabricates a global model.
// With -report-json the per-round breakdown (including the
// condense-and-forward duration) is written in the internal/benchio
// schema, committable and diffable with cmd/benchdiff.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	lib "github.com/dbdc-go/dbdc"
	"github.com/dbdc-go/dbdc/internal/aggtree"
	"github.com/dbdc-go/dbdc/internal/benchio"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7171", "child-facing listen address")
	id := flag.String("id", "agg", "this aggregator's site id on the parent's wire")
	parent := flag.String("parent", "", "upstream server address (required): the root dbdc-server or a higher-level dbdc-agg")
	expect := flag.Int("expect", 2, "number of distinct child models per round")
	eps := flag.Float64("eps", 0, "Eps_local the sites use (required; validates models)")
	minPts := flag.Int("minpts", 0, "MinPts the sites use (required)")
	epsGlobal := flag.Float64("epsglobal", 0, "regional Eps_global; 0 = paper default (max specific ε-range, propagated upward via the condensed model)")
	repBudget := flag.Int("rep-budget", 0, "cap on representatives per regional cluster in the condensed upload; 0 = forward every representative (lossless)")
	rounds := flag.Int("rounds", 1, "number of tree rounds to serve before exiting")
	timeout := flag.Duration("timeout", 30*time.Second, "per-connection I/O timeout (children and parent)")
	quorum := flag.Int("quorum", 0, "minimum usable child models per round; 0 = proceed with any")
	acceptTimeout := flag.Duration("accept-timeout", 0, "accept-phase deadline per round; 0 = -timeout")
	expectSites := flag.String("expect-sites", "", "comma-separated child ids for per-name failure reporting")
	maxUploadBytes := flag.Int64("max-upload-bytes", 0, "upload byte cap advertised to budget-handshaking children (0 = no cap)")
	reportJSON := flag.String("report-json", "", "write the per-round phase breakdown as a benchio JSON report to this file (\"-\" = stdout)")
	rev := flag.String("rev", "", "source revision recorded in the JSON report")
	flag.Parse()

	if *eps <= 0 || *minPts < 1 || *parent == "" {
		flag.Usage()
		os.Exit(2)
	}
	cfg := aggtree.Config{
		ID:     *id,
		Parent: *parent,
		Expect: *expect,
		Quorum: *quorum,
		Cluster: lib.Config{
			Local:     lib.Params{Eps: *eps, MinPts: *minPts},
			EpsGlobal: *epsGlobal,
		},
		RepBudget:      *repBudget,
		MaxUploadBytes: *maxUploadBytes,
		Timeout:        *timeout,
		AcceptTimeout:  *acceptTimeout,
	}
	if *expectSites != "" {
		for _, cid := range strings.Split(*expectSites, ",") {
			if cid = strings.TrimSpace(cid); cid != "" {
				cfg.ExpectedSites = append(cfg.ExpectedSites, cid)
			}
		}
	}
	agg, err := aggtree.New(*addr, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dbdc-agg: %v\n", err)
		os.Exit(1)
	}
	defer agg.Close()

	fmt.Fprintf(os.Stderr, "dbdc-agg: %s listening on %s for %d children (quorum %d), parent %s\n",
		*id, agg.Addr(), *expect, *quorum, *parent)
	// Like dbdc-server, the JSON report accumulates one entry group per
	// round and is rewritten after every round, so a killed aggregator
	// still leaves the completed rounds on disk.
	jsonReport := &benchio.Report{Rev: *rev, Timestamp: time.Now().UTC().Format(time.RFC3339)}
	for round := 1; round <= *rounds; round++ {
		global, report, err := agg.RunRound()
		if report != nil {
			fmt.Fprintf(os.Stderr, "dbdc-agg: %s %s\n", *id, report)
			if *reportJSON != "" {
				prefix := fmt.Sprintf("agg=%s/", *id)
				if *rounds > 1 {
					prefix = fmt.Sprintf("agg=%s/round=%d/", *id, round)
				}
				jsonReport.Entries = append(jsonReport.Entries, report.BenchReport(*rev, prefix).Entries...)
				if *reportJSON != "-" || round == *rounds {
					if werr := writeReport(*reportJSON, jsonReport); werr != nil {
						fmt.Fprintf(os.Stderr, "dbdc-agg: writing %s: %v\n", *reportJSON, werr)
						os.Exit(1)
					}
				}
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "dbdc-agg: round %d failed: %v\n", round, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr,
			"dbdc-agg: round %d: level %d, root model %d representatives in %d clusters (Eps_global=%g), forward %s\n",
			round, agg.Level(), len(global.Reps), global.NumClusters, global.EpsGlobal,
			report.ForwardDuration.Round(time.Millisecond))
	}
}

// writeReport writes the accumulated benchio report to path ("-" =
// stdout). The file is truncated and rewritten whole each round.
func writeReport(path string, rep *benchio.Report) error {
	if path == "-" {
		return benchio.Write(os.Stdout, rep)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := benchio.Write(f, rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
