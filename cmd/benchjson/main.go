// Command benchjson converts `go test -bench` output into the committed
// BENCH_<rev>.json artifact format (see docs/performance.md). It reads the
// benchmark text from stdin, tees it unchanged to stdout — so the pipeline
// stays benchstat-compatible — and writes the parsed JSON report to the
// output file:
//
//	go test -bench=. -benchmem . | go run ./cmd/benchjson -rev $(git rev-parse --short HEAD)
//
// With -out the file name is explicit; otherwise it is BENCH_<rev>.json in
// the current directory (BENCH_unversioned.json when -rev is omitted).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/dbdc-go/dbdc/internal/benchio"
	"github.com/dbdc-go/dbdc/internal/profiles"
)

func main() {
	rev := flag.String("rev", "", "source revision recorded in the report (git short hash)")
	out := flag.String("out", "", "output file (default BENCH_<rev>.json)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of this run to the file")
	memProfile := flag.String("memprofile", "", "write a heap profile of this run to the file")
	flag.Parse()
	stop, err := profiles.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	err = run(*rev, *out)
	if perr := stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(rev, out string) error {
	if out == "" {
		name := rev
		if name == "" {
			name = "unversioned"
		}
		out = "BENCH_" + name + ".json"
	}
	// Tee: the raw text stays on stdout for humans and benchstat.
	rep, err := benchio.Parse(io.TeeReader(os.Stdin, os.Stdout))
	if err != nil {
		return err
	}
	if len(rep.Entries) == 0 {
		return fmt.Errorf("no benchmark results found on stdin")
	}
	rep.Rev = rev
	benchio.StampHost(rep)
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := benchio.Write(f, rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d entries)\n", out, len(rep.Entries))
	return nil
}
