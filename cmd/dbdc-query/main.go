// Command dbdc-query asks a site for all of its objects belonging to a
// global cluster — the query Section 7 of the paper motivates the
// relabeling step with ("give me all objects on your site which belong to
// the global cluster 4711"). Pair it with `dbdc-site -serve-queries`.
//
// Usage:
//
//	dbdc-query -addr site-host:7071 -cluster 3 [-o members.csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/data"
	"github.com/dbdc-go/dbdc/internal/transport"
)

func main() {
	addr := flag.String("addr", "", "site query address (required)")
	id := flag.Int("cluster", -1, "global cluster id (required, non-negative)")
	out := flag.String("o", "", "output CSV (default stdout)")
	timeout := flag.Duration("timeout", 10*time.Second, "I/O timeout")
	flag.Parse()
	if *addr == "" || *id < 0 {
		flag.Usage()
		os.Exit(2)
	}
	members, err := transport.QueryCluster(*addr, cluster.ID(*id), *timeout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dbdc-query: %v\n", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dbdc-query: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := data.WriteCSV(w, members); err != nil {
		fmt.Fprintf(os.Stderr, "dbdc-query: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "dbdc-query: %d objects of global cluster %d on %s\n",
		len(members), *id, *addr)
}
