// Command dbdc clusters a CSV of points, either centrally with DBSCAN or
// distributed with DBDC over simulated sites, and writes one cluster id per
// input row (-1 for noise).
//
// Usage:
//
//	dbdc -input points.csv -eps 1.2 -minpts 4                  # central DBSCAN
//	dbdc -input points.csv -eps 1.2 -minpts 4 -sites 4         # DBDC, 4 sites
//	dbdc ... -model rep-kmeans -epsglobal 2.4 -index kdtree
//
// With -sites > 1 the input is split over that many simulated sites
// round-robin, the full DBDC pipeline runs, and the printed labels are the
// global cluster ids after relabeling. The summary on stderr reports the
// transmission cost of the round.
package main

import (
	"flag"
	"fmt"
	"os"

	lib "github.com/dbdc-go/dbdc"
	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/data"
	"github.com/dbdc-go/dbdc/internal/viz"
)

func main() {
	input := flag.String("input", "", "input CSV of points (required)")
	eps := flag.Float64("eps", 0, "DBSCAN Eps (required)")
	minPts := flag.Int("minpts", 0, "DBSCAN MinPts (required)")
	sites := flag.Int("sites", 1, "number of simulated sites; 1 = central DBSCAN")
	modelKind := flag.String("model", string(lib.RepScor), "local model: rep-scor or rep-kmeans")
	epsGlobal := flag.Float64("epsglobal", 0, "Eps_global; 0 = paper default (max specific ε-range)")
	autoEps := flag.Bool("autoeps", false, "derive Eps_global from the representatives' density structure (OPTICS gap cut) instead of a fixed radius")
	idx := flag.String("index", string(lib.IndexRStar), "neighborhood index")
	out := flag.String("o", "", "output file for labels (default stdout)")
	plot := flag.Bool("plot", false, "print an ASCII scatter plot of the clustering to stderr")
	flag.Parse()

	if *input == "" || *eps <= 0 || *minPts < 1 {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*input)
	if err != nil {
		fatal(err)
	}
	pts, err := data.ReadCSV(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	params := lib.Params{Eps: *eps, MinPts: *minPts}

	var labels lib.Labeling
	if *sites <= 1 {
		res, err := lib.Cluster(pts, params, lib.IndexKind(*idx))
		if err != nil {
			fatal(err)
		}
		labels = res.Labels
		fmt.Fprintf(os.Stderr, "dbdc: central DBSCAN: %d clusters, %d noise of %d points\n",
			res.NumClusters(), res.Labels.NumNoise(), len(pts))
	} else {
		part, err := data.PartitionRoundRobin(len(pts), *sites)
		if err != nil {
			fatal(err)
		}
		sitePts := part.Extract(pts)
		siteList := make([]lib.Site, *sites)
		for s := range siteList {
			siteList[s] = lib.Site{ID: fmt.Sprintf("site-%02d", s), Points: sitePts[s]}
		}
		cfg := lib.Config{
			Local:         params,
			Model:         lib.ModelKind(*modelKind),
			EpsGlobal:     *epsGlobal,
			EpsGlobalAuto: *autoEps,
			Index:         lib.IndexKind(*idx),
		}
		res, err := lib.Run(siteList, cfg)
		if err != nil {
			fatal(err)
		}
		perSite := make([][]cluster.ID, *sites)
		var uplink, downlink int
		for s := range siteList {
			sr := res.Sites[siteList[s].ID]
			perSite[s] = sr.Labels
			uplink += sr.UplinkBytes
			downlink += sr.DownlinkBytes
		}
		labels, err = data.Assemble(part, perSite, len(pts))
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr,
			"dbdc: DBDC over %d sites: %d global clusters, %d noise of %d points, %d representatives (%.1f%%), uplink %dB, downlink %dB/site, distributed time %v\n",
			*sites, res.Global.NumClusters, labels.NumNoise(), len(pts),
			res.TotalRepresentatives(),
			100*float64(res.TotalRepresentatives())/float64(len(pts)),
			uplink, res.Global.EncodedSize(), res.DistributedDuration())
		fmt.Fprintf(os.Stderr, "dbdc: Eps_global used: %g (%.2fx Eps_local)\n",
			res.Global.EpsGlobal, res.Global.EpsGlobal / *eps)
	}

	if *plot {
		rendered, err := viz.Scatter(pts, labels, 72, 28)
		if err != nil {
			fatal(err)
		}
		fmt.Fprint(os.Stderr, rendered)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	for _, id := range labels {
		fmt.Fprintln(w, id)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dbdc: %v\n", err)
	os.Exit(1)
}
