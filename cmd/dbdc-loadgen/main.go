// Command dbdc-loadgen drives a classification front end (dbdc-server or
// dbdc-site with -serve-classify) with closed- or open-loop load and
// reports throughput and latency percentiles.
//
// Usage:
//
//	dbdc-loadgen -addr 127.0.0.1:7072 [-conc 8] [-duration 10s] [-batch 16] \
//	    [-rate 5000] [-dataset a|b|c] [-n 8700] [-seed 1] [-input points.csv] \
//	    [-report-json out.json] [-rev $(git rev-parse --short HEAD)]
//
// By default each worker owns one persistent connection and keeps exactly
// one request in flight (send, wait, record, repeat), so the offered load
// adapts to what the server sustains — the standard closed-loop
// benchmarking model. With -rate N the generator switches to an open loop:
// Poisson arrivals at the target aggregate rate regardless of server speed,
// with latency measured from the scheduled arrival so queueing delay under
// overload shows up in the tail percentiles (no coordinated omission). The
// summary then also reports achieved vs target rate, the maximum queue
// depth, and any shed arrivals.
// The query pool is either a CSV of points (-input) or a generated paper
// dataset (-dataset/-n/-seed, matching cmd/datagen). With -report-json the
// run is written in the internal/benchio schema, so serving throughput
// joins the BENCH_<rev>.json trajectory and cmd/benchdiff can flag
// regressions across revisions.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/dbdc-go/dbdc/internal/benchio"
	"github.com/dbdc-go/dbdc/internal/data"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/profiles"
	"github.com/dbdc-go/dbdc/internal/serve"
)

// stopProfiles finalizes any pprof captures; fatal routes through it so the
// profile files are complete even when the run aborts.
var stopProfiles func() error

func main() {
	addr := flag.String("addr", "127.0.0.1:7072", "classification front end address")
	conc := flag.Int("conc", 0, "concurrent workers (connections); 0 = GOMAXPROCS")
	duration := flag.Duration("duration", 5*time.Second, "run length")
	batch := flag.Int("batch", 1, "points per request (1 = MsgClassify, >1 = MsgClassifyBatch)")
	rate := flag.Float64("rate", 0, "open-loop mode: target aggregate request rate per second with Poisson arrivals (0 = closed loop)")
	dataset := flag.String("dataset", "a", "query pool generator: a, b or c (paper test data sets)")
	n := flag.Int("n", data.DatasetASize, "query pool cardinality (dataset a only)")
	seed := flag.Int64("seed", 1, "query pool generator seed")
	input := flag.String("input", "", "CSV of query points (overrides -dataset)")
	timeout := flag.Duration("timeout", 10*time.Second, "dial and per-request I/O timeout")
	reportJSON := flag.String("report-json", "", "write the run as a benchio JSON report to this file (\"-\" = stdout)")
	rev := flag.String("rev", "", "source revision recorded in the JSON report")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the load run to the file")
	memProfile := flag.String("memprofile", "", "write a heap profile of the load run to the file")
	flag.Parse()

	stop, err := profiles.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	stopProfiles = stop

	pts, err := queryPool(*input, *dataset, *n, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "dbdc-loadgen: %d query points against %s\n", len(pts), *addr)
	res, err := serve.RunLoad(serve.LoadConfig{
		Addr:        *addr,
		Concurrency: *conc,
		Duration:    *duration,
		BatchSize:   *batch,
		Points:      pts,
		Timeout:     *timeout,
		Rate:        *rate,
		Seed:        *seed,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "dbdc-loadgen: %s\n", res)
	if *reportJSON != "" {
		rep := res.BenchReport(*rev)
		var werr error
		if *reportJSON == "-" {
			werr = benchio.Write(os.Stdout, rep)
		} else {
			var f *os.File
			if f, werr = os.Create(*reportJSON); werr == nil {
				if werr = benchio.Write(f, rep); werr != nil {
					f.Close()
				} else {
					werr = f.Close()
				}
			}
		}
		if werr != nil {
			fatal(fmt.Errorf("writing %s: %w", *reportJSON, werr))
		}
	}
	if err := stop(); err != nil {
		stopProfiles = nil // already finalized; don't run it twice
		fatal(err)
	}
}

// queryPool loads the query points from a CSV or generates a paper dataset,
// mirroring cmd/datagen's -dataset selection.
func queryPool(input, dataset string, n int, seed int64) ([]geom.Point, error) {
	if input != "" {
		f, err := os.Open(input)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return data.ReadCSV(f)
	}
	switch dataset {
	case "a", "A":
		return data.DatasetA(n, seed).Points, nil
	case "b", "B":
		return data.DatasetB(seed).Points, nil
	case "c", "C":
		return data.DatasetC(seed).Points, nil
	default:
		return nil, fmt.Errorf("unknown -dataset %q (want a, b or c)", dataset)
	}
}

func fatal(err error) {
	if stopProfiles != nil {
		stopProfiles()
	}
	fmt.Fprintf(os.Stderr, "dbdc-loadgen: %v\n", err)
	os.Exit(1)
}
