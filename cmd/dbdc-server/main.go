// Command dbdc-server runs the central DBDC site: it waits for the given
// number of client sites to upload their local models, computes the global
// model and sends it back to every site.
//
// Usage:
//
//	dbdc-server -addr :7070 -sites 3 -eps 1.2 -minpts 4 [-epsglobal 0] \
//	    [-quorum 2] [-accept-timeout 30s] [-expect-sites site-1,site-2,site-3]
//
// A round completes as soon as all expected sites delivered a model, or at
// the accept deadline with at least -quorum usable models (the paper's
// "the server proceeds with the models it has"). The per-site round report
// — who delivered, who failed and why, who retried, and the per-phase
// breakdown (worker count, local DBSCAN, condensation, backoff) for sites
// that attached metrics to their upload — is printed after every round.
// With -report-json the aggregated breakdown is additionally written in
// the internal/benchio schema (the BENCH_<rev>.json format), so wire-level
// runs can be committed and diffed with cmd/benchdiff exactly like the
// in-process benchmark artifacts. Pair it with dbdc-site processes
// pointing at the same address.
//
// With -serve-classify the server doubles as an online classification
// front end: every completed round publishes its global model into a
// versioned registry (hot-swapped atomically under live traffic) and the
// process keeps answering MsgClassify/MsgClassifyBatch requests after the
// last round until killed. -metrics-addr additionally exposes Prometheus
// metrics (QPS, latency percentiles, model version) over HTTP. See
// docs/serving.md.
//
// With -stream the server runs the always-on streaming deployment instead
// of synchronous rounds: sites connect whenever their clustering changed,
// uploading full models or streaming deltas (docs/streaming.md); the
// global model is rebuilt on a debounced schedule (-debounce) with stable
// cluster ids and hot-swapped into the classification registry
// continuously. The process serves until killed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	lib "github.com/dbdc-go/dbdc"
	"github.com/dbdc-go/dbdc/internal/benchio"
	"github.com/dbdc-go/dbdc/internal/index"
	"github.com/dbdc-go/dbdc/internal/serve"
	"github.com/dbdc-go/dbdc/internal/transport"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	sites := flag.Int("sites", 2, "number of distinct sites per round")
	eps := flag.Float64("eps", 0, "Eps_local the sites use (required; validates models)")
	minPts := flag.Int("minpts", 0, "MinPts the sites use (required)")
	epsGlobal := flag.Float64("epsglobal", 0, "Eps_global; 0 = paper default (max specific ε-range)")
	rounds := flag.Int("rounds", 1, "number of DBDC rounds to serve before exiting")
	timeout := flag.Duration("timeout", 30*time.Second, "per-connection I/O timeout")
	quorum := flag.Int("quorum", 0, "minimum usable site models per round; 0 = proceed with any")
	acceptTimeout := flag.Duration("accept-timeout", 0, "accept-phase deadline per round; 0 = -timeout")
	expectSites := flag.String("expect-sites", "", "comma-separated site ids for per-name failure reporting")
	maxUploadBytes := flag.Int64("max-upload-bytes", 0, "upload byte cap advertised to budget-handshaking sites (0 = no cap); handshaking sites shrink their rep budget until the model frame fits")
	reportJSON := flag.String("report-json", "", "write the per-round phase breakdown as a benchio JSON report to this file (\"-\" = stdout)")
	rev := flag.String("rev", "", "source revision recorded in the JSON report")
	serveClassify := flag.String("serve-classify", "", "serve online classification on this address (e.g. :7072); every completed round hot-swaps the model, and the server keeps answering after the last round until killed")
	classifyIndex := flag.String("classify-index", string(index.KindKDTree), "spatial index the classifier bulk-loads the representatives into")
	metricsAddr := flag.String("metrics-addr", "", "expose Prometheus metrics over HTTP on this address (e.g. :9090)")
	streamMode := flag.Bool("stream", false, "run the always-on streaming server (accepts full and delta uploads, rebuilds continuously) instead of synchronous rounds")
	debounce := flag.Duration("debounce", 100*time.Millisecond, "with -stream: coalesce delta folds arriving within this window into one global rebuild (0 = rebuild per fold)")
	flag.Parse()

	if *eps <= 0 || *minPts < 1 {
		flag.Usage()
		os.Exit(2)
	}
	cfg := lib.Config{
		Local:     lib.Params{Eps: *eps, MinPts: *minPts},
		EpsGlobal: *epsGlobal,
	}
	if *streamMode {
		runStreamServer(*addr, cfg, *timeout, *debounce, *serveClassify, *classifyIndex, *metricsAddr)
		return
	}
	srv, err := transport.NewServer(*addr, *sites, cfg, *timeout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dbdc-server: %v\n", err)
		os.Exit(1)
	}
	defer srv.Close()
	srv.SetMaxUploadBytes(*maxUploadBytes)

	// Online classification: completed rounds publish their global model
	// into a versioned registry; a front end answers MsgClassify frames
	// against the current snapshot and hot-swaps between rounds.
	var classifySrv *serve.Server
	var classifyDone chan error
	if *serveClassify != "" {
		ik := index.Kind(*classifyIndex)
		valid := false
		for _, k := range index.Kinds() {
			if k == ik {
				valid = true
			}
		}
		if !valid {
			fmt.Fprintf(os.Stderr, "dbdc-server: unknown -classify-index %q (want one of %v)\n", *classifyIndex, index.Kinds())
			os.Exit(2)
		}
		registry := serve.NewRegistry(ik)
		metrics := serve.NewMetrics(registry)
		srv.SetOnGlobal(registry.PublishFunc(func(err error) {
			fmt.Fprintf(os.Stderr, "dbdc-server: publishing global model: %v\n", err)
		}))
		classifySrv, err = serve.NewServer(*serveClassify, serve.ServerConfig{
			Registry: registry,
			Metrics:  metrics,
			Timeout:  *timeout,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dbdc-server: %v\n", err)
			os.Exit(1)
		}
		defer classifySrv.Close()
		classifyDone = make(chan error, 1)
		go func() { classifyDone <- classifySrv.Serve() }()
		fmt.Fprintf(os.Stderr, "dbdc-server: serving classification on %s (index %s)\n",
			classifySrv.Addr(), ik)
		if *metricsAddr != "" {
			closeFn, bound, err := metrics.ListenAndServe(*metricsAddr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dbdc-server: %v\n", err)
				os.Exit(1)
			}
			defer closeFn()
			fmt.Fprintf(os.Stderr, "dbdc-server: metrics on http://%s/metrics\n", bound)
		}
	} else if *metricsAddr != "" {
		fmt.Fprintln(os.Stderr, "dbdc-server: -metrics-addr needs -serve-classify")
		os.Exit(2)
	}
	opts := transport.RoundOptions{
		Quorum:        *quorum,
		AcceptTimeout: *acceptTimeout,
	}
	if *expectSites != "" {
		for _, id := range strings.Split(*expectSites, ",") {
			if id = strings.TrimSpace(id); id != "" {
				opts.ExpectedSites = append(opts.ExpectedSites, id)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "dbdc-server: listening on %s for %d sites (quorum %d)\n",
		srv.Addr(), *sites, *quorum)
	// The JSON report accumulates one entry group per round (prefix
	// "round=N/") and is rewritten after every round, so a killed server
	// still leaves the completed rounds on disk.
	jsonReport := &benchio.Report{Rev: *rev, Timestamp: time.Now().UTC().Format(time.RFC3339)}
	for round := 1; round <= *rounds; round++ {
		global, report, err := srv.RunRoundOpts(opts)
		if report != nil {
			fmt.Fprintf(os.Stderr, "dbdc-server: %s\n", report)
			if *reportJSON != "" {
				prefix := ""
				if *rounds > 1 {
					prefix = fmt.Sprintf("round=%d/", round)
				}
				jsonReport.Entries = append(jsonReport.Entries, report.BenchReport(*rev, prefix).Entries...)
				// Files are rewritten whole after every round so a killed
				// server keeps its completed rounds; stdout is written
				// once, after the last round.
				if *reportJSON != "-" || round == *rounds {
					if werr := writeReport(*reportJSON, jsonReport); werr != nil {
						fmt.Fprintf(os.Stderr, "dbdc-server: writing %s: %v\n", *reportJSON, werr)
						os.Exit(1)
					}
				}
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "dbdc-server: round %d failed: %v\n", round, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr,
			"dbdc-server: round %d: %d representatives in %d global clusters (Eps_global=%g), in=%dB out=%dB\n",
			round, len(global.Reps), global.NumClusters, global.EpsGlobal,
			srv.BytesIn(), srv.BytesOut())
	}
	// With a classification front end, the rounds only feed the registry:
	// the process keeps answering queries until killed.
	if classifySrv != nil {
		fmt.Fprintln(os.Stderr, "dbdc-server: rounds done; serving classification until killed")
		if err := <-classifyDone; err != nil {
			fmt.Fprintf(os.Stderr, "dbdc-server: %v\n", err)
			os.Exit(1)
		}
	}
}

// runStreamServer is the -stream mode: an UpdateServer folding full and
// delta uploads until killed, optionally fronted by a classification
// server whose registry hot-swaps on every debounced rebuild.
func runStreamServer(addr string, cfg lib.Config, timeout, debounce time.Duration, serveClassify, classifyIndex, metricsAddr string) {
	srv, err := lib.NewUpdateServer(addr, cfg, timeout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dbdc-server: %v\n", err)
		os.Exit(1)
	}
	defer srv.Close()
	srv.SetDebounce(debounce)

	var classifyDone chan error
	if serveClassify != "" {
		ik := index.Kind(classifyIndex)
		valid := false
		for _, k := range index.Kinds() {
			if k == ik {
				valid = true
			}
		}
		if !valid {
			fmt.Fprintf(os.Stderr, "dbdc-server: unknown -classify-index %q (want one of %v)\n", classifyIndex, index.Kinds())
			os.Exit(2)
		}
		registry := serve.NewRegistry(ik)
		metrics := serve.NewMetrics(registry)
		srv.SetOnGlobal(registry.PublishFunc(func(err error) {
			fmt.Fprintf(os.Stderr, "dbdc-server: publishing global model: %v\n", err)
		}))
		cs, err := serve.NewServer(serveClassify, serve.ServerConfig{
			Registry: registry,
			Metrics:  metrics,
			Timeout:  timeout,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dbdc-server: %v\n", err)
			os.Exit(1)
		}
		defer cs.Close()
		classifyDone = make(chan error, 1)
		go func() { classifyDone <- cs.Serve() }()
		fmt.Fprintf(os.Stderr, "dbdc-server: serving classification on %s (index %s)\n", cs.Addr(), ik)
		if metricsAddr != "" {
			closeFn, bound, err := metrics.ListenAndServe(metricsAddr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dbdc-server: %v\n", err)
				os.Exit(1)
			}
			defer closeFn()
			fmt.Fprintf(os.Stderr, "dbdc-server: metrics on http://%s/metrics\n", bound)
		}
	} else if metricsAddr != "" {
		fmt.Fprintln(os.Stderr, "dbdc-server: -metrics-addr needs -serve-classify")
		os.Exit(2)
	}

	fmt.Fprintf(os.Stderr, "dbdc-server: streaming mode on %s (debounce %s)\n", srv.Addr(), debounce)
	if err := srv.Serve(0); err != nil {
		fmt.Fprintf(os.Stderr, "dbdc-server: %v\n", err)
		os.Exit(1)
	}
	if classifyDone != nil {
		if err := <-classifyDone; err != nil {
			fmt.Fprintf(os.Stderr, "dbdc-server: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeReport writes the accumulated benchio report to path ("-" =
// stdout). The file is truncated and rewritten whole each round.
func writeReport(path string, rep *benchio.Report) error {
	if path == "-" {
		return benchio.Write(os.Stdout, rep)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := benchio.Write(f, rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
