// Command dbdc-server runs the central DBDC site: it waits for the given
// number of client sites to upload their local models, computes the global
// model and sends it back to every site.
//
// Usage:
//
//	dbdc-server -addr :7070 -sites 3 -eps 1.2 -minpts 4 [-epsglobal 0]
//
// Pair it with dbdc-site processes pointing at the same address.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	lib "github.com/dbdc-go/dbdc"
	"github.com/dbdc-go/dbdc/internal/transport"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	sites := flag.Int("sites", 2, "number of site connections per round")
	eps := flag.Float64("eps", 0, "Eps_local the sites use (required; validates models)")
	minPts := flag.Int("minpts", 0, "MinPts the sites use (required)")
	epsGlobal := flag.Float64("epsglobal", 0, "Eps_global; 0 = paper default (max specific ε-range)")
	rounds := flag.Int("rounds", 1, "number of DBDC rounds to serve before exiting")
	timeout := flag.Duration("timeout", 30*time.Second, "per-connection I/O timeout")
	flag.Parse()

	if *eps <= 0 || *minPts < 1 {
		flag.Usage()
		os.Exit(2)
	}
	cfg := lib.Config{
		Local:     lib.Params{Eps: *eps, MinPts: *minPts},
		EpsGlobal: *epsGlobal,
	}
	srv, err := transport.NewServer(*addr, *sites, cfg, *timeout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dbdc-server: %v\n", err)
		os.Exit(1)
	}
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "dbdc-server: listening on %s for %d sites\n", srv.Addr(), *sites)
	for round := 1; round <= *rounds; round++ {
		global, err := srv.RunRound()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dbdc-server: round %d failed: %v\n", round, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr,
			"dbdc-server: round %d: %d representatives in %d global clusters (Eps_global=%g), in=%dB out=%dB\n",
			round, len(global.Reps), global.NumClusters, global.EpsGlobal,
			srv.BytesIn(), srv.BytesOut())
	}
}
