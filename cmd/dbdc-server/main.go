// Command dbdc-server runs the central DBDC site: it waits for the given
// number of client sites to upload their local models, computes the global
// model and sends it back to every site.
//
// Usage:
//
//	dbdc-server -addr :7070 -sites 3 -eps 1.2 -minpts 4 [-epsglobal 0] \
//	    [-quorum 2] [-accept-timeout 30s] [-expect-sites site-1,site-2,site-3]
//
// A round completes as soon as all expected sites delivered a model, or at
// the accept deadline with at least -quorum usable models (the paper's
// "the server proceeds with the models it has"). The per-site round report
// — who delivered, who failed and why, who retried, and the per-phase
// breakdown (worker count, local DBSCAN, condensation, backoff) for sites
// that attached metrics to their upload — is printed after every round.
// With -report-json the aggregated breakdown is additionally written in
// the internal/benchio schema (the BENCH_<rev>.json format), so wire-level
// runs can be committed and diffed with cmd/benchdiff exactly like the
// in-process benchmark artifacts. Pair it with dbdc-site processes
// pointing at the same address.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	lib "github.com/dbdc-go/dbdc"
	"github.com/dbdc-go/dbdc/internal/benchio"
	"github.com/dbdc-go/dbdc/internal/transport"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	sites := flag.Int("sites", 2, "number of distinct sites per round")
	eps := flag.Float64("eps", 0, "Eps_local the sites use (required; validates models)")
	minPts := flag.Int("minpts", 0, "MinPts the sites use (required)")
	epsGlobal := flag.Float64("epsglobal", 0, "Eps_global; 0 = paper default (max specific ε-range)")
	rounds := flag.Int("rounds", 1, "number of DBDC rounds to serve before exiting")
	timeout := flag.Duration("timeout", 30*time.Second, "per-connection I/O timeout")
	quorum := flag.Int("quorum", 0, "minimum usable site models per round; 0 = proceed with any")
	acceptTimeout := flag.Duration("accept-timeout", 0, "accept-phase deadline per round; 0 = -timeout")
	expectSites := flag.String("expect-sites", "", "comma-separated site ids for per-name failure reporting")
	reportJSON := flag.String("report-json", "", "write the per-round phase breakdown as a benchio JSON report to this file (\"-\" = stdout)")
	rev := flag.String("rev", "", "source revision recorded in the JSON report")
	flag.Parse()

	if *eps <= 0 || *minPts < 1 {
		flag.Usage()
		os.Exit(2)
	}
	cfg := lib.Config{
		Local:     lib.Params{Eps: *eps, MinPts: *minPts},
		EpsGlobal: *epsGlobal,
	}
	srv, err := transport.NewServer(*addr, *sites, cfg, *timeout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dbdc-server: %v\n", err)
		os.Exit(1)
	}
	defer srv.Close()
	opts := transport.RoundOptions{
		Quorum:        *quorum,
		AcceptTimeout: *acceptTimeout,
	}
	if *expectSites != "" {
		for _, id := range strings.Split(*expectSites, ",") {
			if id = strings.TrimSpace(id); id != "" {
				opts.ExpectedSites = append(opts.ExpectedSites, id)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "dbdc-server: listening on %s for %d sites (quorum %d)\n",
		srv.Addr(), *sites, *quorum)
	// The JSON report accumulates one entry group per round (prefix
	// "round=N/") and is rewritten after every round, so a killed server
	// still leaves the completed rounds on disk.
	jsonReport := &benchio.Report{Rev: *rev, Timestamp: time.Now().UTC().Format(time.RFC3339)}
	for round := 1; round <= *rounds; round++ {
		global, report, err := srv.RunRoundOpts(opts)
		if report != nil {
			fmt.Fprintf(os.Stderr, "dbdc-server: %s\n", report)
			if *reportJSON != "" {
				prefix := ""
				if *rounds > 1 {
					prefix = fmt.Sprintf("round=%d/", round)
				}
				jsonReport.Entries = append(jsonReport.Entries, report.BenchReport(*rev, prefix).Entries...)
				// Files are rewritten whole after every round so a killed
				// server keeps its completed rounds; stdout is written
				// once, after the last round.
				if *reportJSON != "-" || round == *rounds {
					if werr := writeReport(*reportJSON, jsonReport); werr != nil {
						fmt.Fprintf(os.Stderr, "dbdc-server: writing %s: %v\n", *reportJSON, werr)
						os.Exit(1)
					}
				}
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "dbdc-server: round %d failed: %v\n", round, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr,
			"dbdc-server: round %d: %d representatives in %d global clusters (Eps_global=%g), in=%dB out=%dB\n",
			round, len(global.Reps), global.NumClusters, global.EpsGlobal,
			srv.BytesIn(), srv.BytesOut())
	}
}

// writeReport writes the accumulated benchio report to path ("-" =
// stdout). The file is truncated and rewritten whole each round.
func writeReport(path string, rep *benchio.Report) error {
	if path == "-" {
		return benchio.Write(os.Stdout, rep)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := benchio.Write(f, rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
