// Command dbdc-site runs one client site of a networked DBDC deployment:
// it clusters a local CSV with DBSCAN, uploads the local model to the
// server, receives the global model and writes its relabelled objects.
//
// Usage:
//
//	dbdc-site -addr server:7070 -id site-1 -input local.csv -eps 1.2 -minpts 4 [-workers 4]
//
// -workers > 1 runs the local DBSCAN with that many intra-site goroutines
// (dbscan.RunParallel), carrying the PR-2 parallel kernel into the
// networked deployment; the per-phase costs are printed after the round
// and attached to the upload so the server's round report can show the
// paper's max(local)+global decomposition.
//
// -rep-budget caps the representatives shipped per local cluster (the
// SDBDC bandwidth budget, docs/budgets.md): the site greedily keeps the
// most-covering specific cores, negotiates the server's upload byte cap via
// the MsgHello handshake and shrinks further if the model still does not
// fit. 0 keeps the paper's unbudgeted upload, byte-identical to older
// builds.
//
// With -serve-classify the site keeps running after the round and labels
// new points online against the received global model (the paper's "new
// objects are inserted by classifying them against the representatives");
// -metrics-addr exposes Prometheus metrics for that front end. See
// docs/serving.md.
//
// With -stream the site runs the always-on streaming mode instead of one
// round: the input CSV is ingested in row order as a point stream over a
// sliding window (-window), the local clustering is maintained with
// incremental DBSCAN, and a model update — a delta when the server folds
// them, a full model otherwise — is uploaded whenever the clustering
// changed considerably (-stream-threshold). Pair it with a dbdc-server
// running -stream. See docs/streaming.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	lib "github.com/dbdc-go/dbdc"
	"github.com/dbdc-go/dbdc/internal/data"
	"github.com/dbdc-go/dbdc/internal/index"
	"github.com/dbdc-go/dbdc/internal/serve"
	"github.com/dbdc-go/dbdc/internal/transport"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "server address")
	id := flag.String("id", "", "site id (required)")
	input := flag.String("input", "", "local CSV of points (required)")
	eps := flag.Float64("eps", 0, "DBSCAN Eps_local (required)")
	minPts := flag.Int("minpts", 0, "DBSCAN MinPts (required)")
	modelKind := flag.String("model", string(lib.RepScor), "local model: rep-scor or rep-kmeans")
	workers := flag.Int("workers", 1, "intra-site DBSCAN workers (>1 selects the parallel kernel, 0 = GOMAXPROCS-sized)")
	repBudget := flag.Int("rep-budget", 0, "max representatives shipped per local cluster (SDBDC budget; 0 = unbudgeted)")
	out := flag.String("o", "", "output file for global labels (default stdout)")
	timeout := flag.Duration("timeout", 30*time.Second, "I/O timeout")
	retries := flag.Int("retries", 3, "max upload attempts on transient failures (1 = no retry)")
	retryBase := flag.Duration("retry-base", 50*time.Millisecond, "base backoff delay between attempts")
	retryMax := flag.Duration("retry-max", 2*time.Second, "backoff delay cap")
	legacyUpload := flag.Bool("legacy-upload", false, "force the pre-metrics MsgLocalModel upload frame (skips the downgrade negotiation against old servers)")
	serveQueries := flag.String("serve-queries", "", "after the round, serve cluster-membership queries on this address (e.g. :7071) until killed")
	serveClassify := flag.String("serve-classify", "", "after the round, classify new points against the received global model on this address (e.g. :7072) until killed")
	classifyIndex := flag.String("classify-index", string(index.KindKDTree), "spatial index the local classifier bulk-loads the representatives into")
	metricsAddr := flag.String("metrics-addr", "", "expose Prometheus classification metrics over HTTP on this address (needs -serve-classify)")
	streamMode := flag.Bool("stream", false, "ingest the input as a point stream over a sliding window and upload model updates continuously (see docs/streaming.md)")
	window := flag.Int("window", 1000, "with -stream: sliding-window size in points")
	streamThreshold := flag.Float64("stream-threshold", 0.15, "with -stream: clustering-change level (1 − P^II) above which the site uploads")
	streamCheck := flag.Int("stream-check", 64, "with -stream: ingested points between change checks")
	flag.Parse()

	if *id == "" || *input == "" || *eps <= 0 || *minPts < 1 {
		flag.Usage()
		os.Exit(2)
	}
	// Reject unknown model kinds at flag-parse time: historically the raw
	// string went into the config unvalidated and the site failed only
	// mid-round, after clustering had already run.
	kind := lib.ModelKind(*modelKind)
	if kind != lib.RepScor && kind != lib.RepKMeans {
		fmt.Fprintf(os.Stderr, "dbdc-site: unknown -model %q (want %q or %q)\n",
			*modelKind, lib.RepScor, lib.RepKMeans)
		flag.Usage()
		os.Exit(2)
	}
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "dbdc-site: negative -workers %d\n", *workers)
		flag.Usage()
		os.Exit(2)
	}
	if *repBudget < 0 {
		fmt.Fprintf(os.Stderr, "dbdc-site: negative -rep-budget %d\n", *repBudget)
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*input)
	if err != nil {
		fatal(err)
	}
	pts, err := data.ReadCSV(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	siteWorkers := *workers
	if siteWorkers == 0 {
		siteWorkers = runtime.GOMAXPROCS(0)
	}
	cfg := lib.Config{
		Local:       lib.Params{Eps: *eps, MinPts: *minPts},
		Model:       kind,
		SiteWorkers: siteWorkers,
		RepBudget:   *repBudget,
	}
	if *streamMode {
		runStreamSite(*id, *addr, pts, cfg, *window, *streamThreshold, *streamCheck, *timeout, *legacyUpload)
		return
	}
	client := &lib.TransportClient{
		Addr:               *addr,
		Timeout:            *timeout,
		DisableTimedUpload: *legacyUpload,
		Retry: lib.RetryPolicy{
			MaxAttempts: *retries,
			BaseDelay:   *retryBase,
			MaxDelay:    *retryMax,
			Jitter:      0.2,
		},
		OnRetry: func(attempt int, err error, delay time.Duration) {
			fmt.Fprintf(os.Stderr, "dbdc-site %s: attempt %d failed (%v), retrying in %s\n",
				*id, attempt, err, delay.Round(time.Millisecond))
		},
	}
	report, err := lib.RunSiteClient(client, *id, pts, cfg)
	if err != nil {
		fatal(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	for _, id := range report.Labels {
		fmt.Fprintln(w, id)
	}
	fmt.Fprintf(os.Stderr,
		"dbdc-site %s: %d points, %d global clusters visible, %d former noise adopted, sent %dB, received %dB, %d attempt(s)\n",
		*id, len(pts), report.Global.NumClusters, report.Stats.NoiseAdopted,
		report.BytesSent, report.BytesReceived, report.Attempts)
	fmt.Fprintf(os.Stderr, "dbdc-site %s: phases: %s\n", *id, report.Phases.String())
	if *repBudget > 0 {
		neg := report.Negotiation
		capStr := "none"
		if neg.Acked {
			capStr = fmt.Sprintf("%dB", neg.MaxUploadBytes)
			if neg.MaxUploadBytes == 0 {
				capStr = "unlimited"
			}
		}
		fmt.Fprintf(os.Stderr,
			"dbdc-site %s: budget: configured=%d shipped=%d dropped=%d coverage=%.3f server-cap=%s\n",
			*id, *repBudget, neg.Budget, neg.Stats.Dropped(), neg.Stats.CoverageFraction(), capStr)
	}
	// Online classification against the freshly received global model: the
	// site publishes it into a local registry and answers MsgClassify
	// frames until killed. A future round (re-running the site) would
	// publish version 2 and hot-swap under live traffic.
	var classifyDone chan error
	if *serveClassify != "" {
		ik := index.Kind(*classifyIndex)
		valid := false
		for _, k := range index.Kinds() {
			if k == ik {
				valid = true
			}
		}
		if !valid {
			fmt.Fprintf(os.Stderr, "dbdc-site: unknown -classify-index %q (want one of %v)\n", *classifyIndex, index.Kinds())
			os.Exit(2)
		}
		registry := serve.NewRegistry(ik)
		metrics := serve.NewMetrics(registry)
		if _, err := registry.Publish(report.Global); err != nil {
			fatal(err)
		}
		cs, err := serve.NewServer(*serveClassify, serve.ServerConfig{
			Registry: registry,
			Metrics:  metrics,
			Timeout:  *timeout,
		})
		if err != nil {
			fatal(err)
		}
		defer cs.Close()
		classifyDone = make(chan error, 1)
		go func() { classifyDone <- cs.Serve() }()
		fmt.Fprintf(os.Stderr, "dbdc-site %s: serving classification on %s (index %s)\n", *id, cs.Addr(), ik)
		if *metricsAddr != "" {
			closeFn, bound, err := metrics.ListenAndServe(*metricsAddr)
			if err != nil {
				fatal(err)
			}
			defer closeFn()
			fmt.Fprintf(os.Stderr, "dbdc-site %s: metrics on http://%s/metrics\n", *id, bound)
		}
	} else if *metricsAddr != "" {
		fmt.Fprintln(os.Stderr, "dbdc-site: -metrics-addr needs -serve-classify")
		os.Exit(2)
	}
	if *serveQueries != "" {
		qs, err := transport.NewSiteQueryServer(*serveQueries, pts, report.Labels, *timeout)
		if err != nil {
			fatal(err)
		}
		defer qs.Close()
		fmt.Fprintf(os.Stderr, "dbdc-site %s: serving cluster queries on %s\n", *id, qs.Addr())
		if err := qs.Serve(0); err != nil {
			fatal(err)
		}
	}
	if classifyDone != nil {
		if err := <-classifyDone; err != nil {
			fatal(err)
		}
	}
}

// runStreamSite is the -stream mode: the CSV rows become a point stream
// ingested over a sliding window, with model updates uploaded whenever the
// clustering changed considerably; a final flush ships the closing state.
func runStreamSite(id, addr string, pts []lib.Point, cfg lib.Config, window int, threshold float64, checkEvery int, timeout time.Duration, legacyUpload bool) {
	site, err := lib.NewStreamSite(lib.StreamConfig{
		SiteID:     id,
		Cluster:    cfg,
		Window:     window,
		Threshold:  threshold,
		CheckEvery: checkEvery,
	}, &lib.StreamClient{Addr: addr, Timeout: timeout, DisableDelta: legacyUpload})
	if err != nil {
		fatal(err)
	}
	for i, p := range pts {
		if err := site.Ingest(p); err != nil {
			fmt.Fprintf(os.Stderr, "dbdc-site %s: point %d: %v (continuing)\n", id, i, err)
		}
	}
	if err := site.Flush(); err != nil {
		fatal(err)
	}
	st := site.Stats()
	fmt.Fprintf(os.Stderr,
		"dbdc-site %s: streamed %d points (window %d, %d turns), %d uploads (%d deltas, %d resyncs), sent %dB, received %dB\n",
		id, st.Ingested, window, st.Turns, st.Uploads, st.DeltaUploads, st.Resyncs,
		st.BytesSent, st.BytesReceived)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dbdc-site: %v\n", err)
	os.Exit(1)
}
