module github.com/dbdc-go/dbdc

go 1.22
